//! Capacity-planning CLI: point the analytical framework at *your*
//! B-tree and workload, get response times, saturation points, and an
//! algorithm recommendation — with an optional simulation cross-check.
//!
//! ```text
//! analyze [--items N] [--node-size N] [--mix qs,qi,qd] [--disk-cost D]
//!         [--memory-levels M] [--buffer-nodes B] [--rate λ]
//!         [--recovery none|naive|leaf-only] [--t-trans T] [--verify]
//! ```
//!
//! Examples:
//!
//! ```text
//! analyze --items 1000000 --node-size 64 --rate 2.0
//! analyze --mix 0.9,0.08,0.02 --disk-cost 10 --buffer-nodes 5000
//! analyze --rate 0.5 --recovery leaf-only --t-trans 200 --verify
//! ```

use cbtree_analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree_btree::Protocol;
use cbtree_btree_model::{lru_cost_model, CostModel, NodeParams, OpMix, TreeShape};
use cbtree_harness::LiveConfig;
use cbtree_obs::table::{fmt_f, Table};
use cbtree_obs::Json;
use cbtree_sim::costs::SimCosts;
use cbtree_sim::{run_seeds, SimAlgorithm, SimConfig, SimRecovery};
use cbtree_sync::SamplePeriod;
use cbtree_workload::{KeyDist, OpsConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    items: u64,
    node_size: usize,
    mix: (f64, f64, f64),
    disk_cost: f64,
    memory_levels: usize,
    buffer_nodes: Option<f64>,
    rate: Option<f64>,
    recovery: RecoveryMode,
    t_trans: f64,
    verify: bool,
    live: bool,
    live_threads: usize,
    sample_every: u64,
    serve: Option<PathBuf>,
    json: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            items: 1_000_000,
            node_size: 64,
            mix: (0.3, 0.5, 0.2),
            disk_cost: 5.0,
            memory_levels: 2,
            buffer_nodes: None,
            rate: None,
            recovery: RecoveryMode::None,
            t_trans: 100.0,
            verify: false,
            live: false,
            live_threads: 4,
            sample_every: 1,
            serve: None,
            json: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: analyze [--items N] [--node-size N] [--mix qs,qi,qd] [--disk-cost D]\n\
         \u{20}       [--memory-levels M] [--buffer-nodes B] [--rate lambda]\n\
         \u{20}       [--recovery none|naive|leaf-only] [--t-trans T] [--verify]\n\
         \u{20}       [--live] [--live-threads N] [--sample-every N]\n\
         \u{20}       [--serve RESULTS.jsonl] [--json PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--items" => a.items = val().parse().unwrap_or_else(|_| usage()),
            "--node-size" => a.node_size = val().parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                let v = val();
                let parts: Vec<f64> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                if parts.len() != 3 {
                    usage();
                }
                a.mix = (parts[0], parts[1], parts[2]);
            }
            "--disk-cost" => a.disk_cost = val().parse().unwrap_or_else(|_| usage()),
            "--memory-levels" => a.memory_levels = val().parse().unwrap_or_else(|_| usage()),
            "--buffer-nodes" => a.buffer_nodes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--rate" => a.rate = Some(val().parse().unwrap_or_else(|_| usage())),
            "--recovery" => {
                a.recovery = match val().as_str() {
                    "none" => RecoveryMode::None,
                    "naive" => RecoveryMode::Naive,
                    "leaf-only" => RecoveryMode::LeafOnly,
                    _ => usage(),
                }
            }
            "--t-trans" => a.t_trans = val().parse().unwrap_or_else(|_| usage()),
            "--verify" => a.verify = true,
            "--live" => a.live = true,
            "--live-threads" => a.live_threads = val().parse().unwrap_or_else(|_| usage()),
            "--sample-every" => a.sample_every = val().parse().unwrap_or_else(|_| usage()),
            "--serve" => a.serve = Some(PathBuf::from(val())),
            "--json" => a.json = Some(PathBuf::from(val())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

fn main() -> ExitCode {
    let args = parse_args();
    let Ok(mix) = OpMix::new(args.mix.0, args.mix.1, args.mix.2) else {
        eprintln!("error: mix must be three probabilities summing to 1");
        return ExitCode::FAILURE;
    };
    let node = match NodeParams::with_max_size(args.node_size) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shape = match TreeShape::derive(args.items, node) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cost = match args.buffer_nodes {
        Some(b) => lru_cost_model(&shape, b, args.disk_cost, 1.0),
        None => CostModel::paper_style(shape.height, args.memory_levels, args.disk_cost, 1.0),
    };
    let cost = match cost {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match ModelConfig::new(shape, mix, cost) {
        Ok(c) => c.with_recovery(args.recovery, args.t_trans),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "tree: {} items, N = {}, height {}, root fanout {:.1}; disk cost {}; \
         mix {:.2}/{:.2}/{:.2}; recovery {:?}\n",
        cfg.shape.n_items,
        args.node_size,
        cfg.height(),
        cfg.shape.root_fanout(),
        args.disk_cost,
        mix.q_search,
        mix.q_insert,
        mix.q_delete,
        args.recovery,
    );

    let mut records = vec![meta_json(&args, mix, &cfg)];
    let mut t = Table::new(
        "analytical model (cost units)",
        &[
            "algorithm",
            "max-thru",
            "eff-max(rho=.5)",
            "search-RT",
            "insert-RT",
            "rho_root",
        ],
    );
    let rate = args.rate;
    let mut best: Option<(Algorithm, f64)> = None;
    for alg in Algorithm::ALL_EXTENDED {
        let model = alg.model(&cfg);
        let max = model.max_throughput().unwrap_or(f64::NAN);
        let eff = model.lambda_at_root_rho(0.5).ok();
        let probe = rate.unwrap_or(0.4 * max);
        let point = model.evaluate(probe).ok();
        let (s_rt, i_rt, rho) = match &point {
            Some(p) => (
                p.response_time_search,
                p.response_time_insert,
                p.root_writer_utilization(),
            ),
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        t.push(vec![
            alg.name().to_string(),
            fmt_f(max, 4),
            eff.map_or_else(|| "-".into(), |x| fmt_f(x, 4)),
            fmt_f(s_rt, 2),
            fmt_f(i_rt, 2),
            fmt_f(rho, 3),
        ]);
        records.push(Json::obj(vec![
            ("type", "analysis_point".into()),
            ("algorithm", alg.name().into()),
            ("max_throughput", Json::f64_or_null(max)),
            (
                "eff_max_rho_half",
                eff.map_or(Json::Null, Json::f64_or_null),
            ),
            ("lambda", Json::f64_or_null(probe)),
            ("saturated", point.is_none().into()),
            ("search_rt", Json::f64_or_null(s_rt)),
            ("insert_rt", Json::f64_or_null(i_rt)),
            ("rho_root", Json::f64_or_null(rho)),
        ]));
        if let Some(r) = rate {
            if max > 1.3 * r && best.is_none_or(|(_, m)| max < m) {
                // Prefer the *least* powerful algorithm with ≥30% headroom
                // (simpler protocols when they suffice).
                best = Some((alg, max));
            }
        }
    }
    t.print();
    if let Some(r) = rate {
        match best {
            Some((alg, max)) => println!(
                "\nrecommendation at λ = {r}: {} (max throughput {max:.3}, ≥30% headroom)",
                alg.name()
            ),
            None => println!(
                "\nno algorithm sustains λ = {r} with headroom on this configuration; \
                 consider larger nodes (optimistic) or the link algorithm"
            ),
        }
        records.push(Json::obj(vec![
            ("type", "recommendation".into()),
            ("lambda", r.into()),
            (
                "algorithm",
                best.map_or(Json::Null, |(alg, _)| alg.name().into()),
            ),
        ]));
    }

    if args.verify {
        let Some(r) = rate else {
            eprintln!("--verify needs --rate");
            return ExitCode::FAILURE;
        };
        println!("\nsimulation cross-check at λ = {r} (3 seeds):");
        let mut t = Table::new(
            "simulation cross-check",
            &["algorithm", "search-RT", "±ci95", "insert-RT", "±ci95"],
        );
        for (alg, sim_alg) in [
            (
                Algorithm::NaiveLockCoupling,
                SimAlgorithm::NaiveLockCoupling,
            ),
            (
                Algorithm::OptimisticDescent,
                SimAlgorithm::OptimisticDescent,
            ),
            (Algorithm::LinkType, SimAlgorithm::LinkType),
            (Algorithm::TwoPhaseLocking, SimAlgorithm::TwoPhaseLocking),
            (Algorithm::Olc, SimAlgorithm::Olc),
        ] {
            let mut c = SimConfig::paper(sim_alg, r, 1);
            c.node_capacity = args.node_size;
            c.initial_items = (args.items as usize).min(200_000);
            c.costs = SimCosts {
                base: 1.0,
                disk_cost: args.disk_cost,
                memory_levels: args.memory_levels,
            };
            c.recovery = match args.recovery {
                RecoveryMode::None => SimRecovery::None,
                RecoveryMode::Naive => SimRecovery::Naive {
                    t_trans: args.t_trans,
                },
                RecoveryMode::LeafOnly => SimRecovery::LeafOnly {
                    t_trans: args.t_trans,
                },
            };
            c = c.with_min_window(100.0, 300.0);
            match run_seeds(&c, &[1, 2, 3]) {
                Ok(s) => {
                    t.push(vec![
                        alg.name().to_string(),
                        fmt_f(s.resp_search.mean, 2),
                        fmt_f(s.resp_search.ci95, 2),
                        fmt_f(s.resp_insert.mean, 2),
                        fmt_f(s.resp_insert.ci95, 2),
                    ]);
                    records.push(Json::obj(vec![
                        ("type", "sim_check".into()),
                        ("algorithm", alg.name().into()),
                        ("lambda", r.into()),
                        ("resp_search", s.resp_search.to_json()),
                        ("resp_insert", s.resp_insert.to_json()),
                    ]));
                }
                Err(e) => t.push(vec![
                    alg.name().to_string(),
                    e.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]),
            }
        }
        t.print();
        println!(
            "(simulation uses up to 200k items; at larger --items the analysis \
             extrapolates the same per-level model)"
        );
    }

    if args.live {
        if let Err(e) = live_compare(&args, mix, &mut records) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.serve {
        if let Err(e) = serve_overlay(path, &mut records) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.json {
        if let Err(e) = cbtree_obs::write_jsonl(path, &records) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// The `meta` JSONL record for an `analyze` invocation.
fn meta_json(args: &Args, mix: OpMix, cfg: &ModelConfig) -> Json {
    Json::obj(vec![
        ("type", "meta".into()),
        ("schema", cbtree_obs::SCHEMA_VERSION.into()),
        ("kind", "analyze".into()),
        ("items", args.items.into()),
        ("node_size", args.node_size.into()),
        ("height", cfg.height().into()),
        (
            "mix",
            Json::arr([
                mix.q_search.into(),
                mix.q_insert.into(),
                mix.q_delete.into(),
            ]),
        ),
        ("disk_cost", args.disk_cost.into()),
        ("memory_levels", args.memory_levels.into()),
        (
            "buffer_nodes",
            args.buffer_nodes.map_or(Json::Null, Json::f64_or_null),
        ),
        ("rate", args.rate.map_or(Json::Null, Json::f64_or_null)),
        ("recovery", format!("{:?}", args.recovery).into()),
        ("t_trans", args.t_trans.into()),
    ])
}

/// Three-way comparison: the analytical model, the discrete-event
/// simulator, and the *real* trees running on OS threads, all on an
/// all-in-memory configuration (the live harness has no disk).
///
/// Units are aligned by calibration: a single-threaded uncontended
/// search-only live run fixes the wall-clock length of one model cost
/// unit, live throughput is converted into a model arrival rate λ, and
/// analysis/simulation are evaluated at that same λ.
fn live_compare(args: &Args, mix: OpMix, records: &mut Vec<Json>) -> Result<(), String> {
    let err = |e: &dyn std::fmt::Display| e.to_string();
    let items = (args.items as usize).min(200_000);
    let node = NodeParams::with_max_size(args.node_size).map_err(|e| err(&e))?;
    let shape = TreeShape::derive(items as u64, node).map_err(|e| err(&e))?;
    let height = shape.height;
    // Every level memory-resident: the live trees never touch a disk.
    let cost = CostModel::paper_style(height, height, args.disk_cost, 1.0).map_err(|e| err(&e))?;
    let mcfg = ModelConfig::new(shape, mix, cost).map_err(|e| err(&e))?;

    let ops = OpsConfig {
        q_search: mix.q_search,
        q_insert: mix.q_insert,
        q_delete: mix.q_delete,
        keys: KeyDist::Uniform {
            lo: 0,
            hi: (2 * items) as u64,
        },
    };
    let base = LiveConfig {
        protocol: Protocol::BLink,
        threads: args.live_threads.max(1),
        capacity: args.node_size,
        initial_items: items,
        ops,
        warmup: Duration::from_millis(150),
        measure: Duration::from_millis(500),
        seed: 0x11FE,
        stats_sampling: SamplePeriod::every(args.sample_every),
        txn: 1,
    };

    // Calibrate: one model cost unit, in seconds of wall clock.
    let calib = cbtree_harness::run(&LiveConfig {
        threads: 1,
        ops: OpsConfig {
            q_search: 1.0,
            q_insert: 0.0,
            q_delete: 0.0,
            ..ops
        },
        ..base.clone()
    });
    let zero_load_units = Algorithm::LinkType
        .model(&mcfg)
        .evaluate(1e-9)
        .map_err(|e| err(&e))?
        .response_time_search;
    if calib.resp_search.n == 0 || calib.resp_search.mean <= 0.0 {
        return Err("calibration run completed no searches".into());
    }
    let unit_secs = calib.resp_search.mean / zero_load_units;
    println!(
        "\nlive execution cross-check: {} threads, {} items in memory, capacity {}",
        base.threads, items, args.node_size
    );
    println!(
        "calibration: 1 model cost unit = {:.0} ns wall clock \
         ({:.2} us per uncontended search / {:.2} units zero-load path)",
        unit_secs * 1e9,
        calib.resp_search.mean * 1e6,
        zero_load_units
    );
    let mut t = Table::new(
        "analysis vs simulation vs live (response times in cost units)",
        &[
            "algorithm",
            "live-thru",
            "lambda",
            "anl-sRT",
            "sim-sRT",
            "live-sRT",
            "anl-iRT",
            "sim-iRT",
            "live-iRT",
            "ltch/op",
            "restart",
            "chase",
        ],
    );
    for (protocol, alg, sim_alg) in [
        (
            Protocol::LockCoupling,
            Algorithm::NaiveLockCoupling,
            SimAlgorithm::NaiveLockCoupling,
        ),
        (
            Protocol::OptimisticDescent,
            Algorithm::OptimisticDescent,
            SimAlgorithm::OptimisticDescent,
        ),
        (Protocol::BLink, Algorithm::LinkType, SimAlgorithm::LinkType),
        (
            Protocol::TwoPhase,
            Algorithm::TwoPhaseLocking,
            SimAlgorithm::TwoPhaseLocking,
        ),
        (Protocol::Olc, Algorithm::Olc, SimAlgorithm::Olc),
    ] {
        let live = cbtree_harness::run(&LiveConfig {
            protocol,
            ..base.clone()
        });
        // The live run is closed-loop; its completion rate, expressed in
        // model cost units, is the open-loop λ the other two pillars see.
        let lambda = live.throughput * unit_secs;
        let (anl_s, anl_i) = match alg.model(&mcfg).evaluate(lambda) {
            Ok(p) => (p.response_time_search, p.response_time_insert),
            Err(_) => (f64::NAN, f64::NAN),
        };
        let mut sc = SimConfig::paper(sim_alg, lambda, 1);
        sc.node_capacity = args.node_size;
        sc.initial_items = items;
        sc.costs = SimCosts {
            base: 1.0,
            disk_cost: args.disk_cost,
            memory_levels: height,
        };
        sc = sc.with_min_window(100.0, 300.0);
        let (sim_s, sim_i) = match run_seeds(&sc, &[1, 2]) {
            Ok(s) => (s.resp_search.mean, s.resp_insert.mean),
            Err(_) => (f64::NAN, f64::NAN),
        };
        let live_s = live.resp_search.mean / unit_secs;
        let live_i = live.resp_insert.mean / unit_secs;
        t.push(vec![
            protocol.name().to_string(),
            fmt_f(live.throughput, 0),
            fmt_f(lambda, 4),
            fmt_f(anl_s, 2),
            fmt_f(sim_s, 2),
            fmt_f(live_s, 2),
            fmt_f(anl_i, 2),
            fmt_f(sim_i, 2),
            fmt_f(live_i, 2),
            fmt_f(live.counters.latches_per_op(), 2),
            fmt_f(live.counters.restart_rate(), 4),
            fmt_f(live.counters.chase_rate(), 4),
        ]);
        records.push(Json::obj(vec![
            ("type", "live_compare".into()),
            ("protocol", protocol.name().into()),
            ("live_throughput", Json::f64_or_null(live.throughput)),
            ("lambda", Json::f64_or_null(lambda)),
            ("unit_secs", Json::f64_or_null(unit_secs)),
            ("anl_search_rt", Json::f64_or_null(anl_s)),
            ("sim_search_rt", Json::f64_or_null(sim_s)),
            ("live_search_rt", Json::f64_or_null(live_s)),
            ("anl_insert_rt", Json::f64_or_null(anl_i)),
            ("sim_insert_rt", Json::f64_or_null(sim_i)),
            ("live_insert_rt", Json::f64_or_null(live_i)),
            (
                "latches_per_op",
                Json::f64_or_null(live.counters.latches_per_op()),
            ),
            (
                "restart_rate",
                Json::f64_or_null(live.counters.restart_rate()),
            ),
            ("chase_rate", Json::f64_or_null(live.counters.chase_rate())),
        ]));
    }
    t.print();
    println!(
        "(response times in model cost units; live converted via the calibrated unit; \
         each pillar evaluated at the live run's measured λ; ltch/op, restart and \
         chase rates from the engine's per-operation telemetry)"
    );
    Ok(())
}

/// Tolerance of the serve overlay's measured-vs-predicted comparison.
const SERVE_OVERLAY_TOLERANCE: f64 = 0.5;
/// Utilization above which the open M/G/1 prediction is not expected to
/// hold (a finite queue sheds instead of growing without bound).
const SERVE_OVERLAY_MAX_RHO: f64 = 0.7;

/// One parsed per-shard point of a `serve_report` record.
struct ServePoint {
    lambda: f64,
    shard: u64,
    /// Workers draining this shard's queue — the `c` of M/G/c.
    c: u32,
    arrival_rate: f64,
    service: cbtree_queueing::mg1::ServiceMoments,
    sojourn_mean_s: f64,
    shed_rate: f64,
}

/// Overlay mode: compare the measured per-shard λ-vs-sojourn curves of
/// an open-loop `serve` sweep against the M/G/c (Lee–Longton)
/// prediction built from each shard's *measured* service moments, with
/// `c` the sweep's workers-per-shard (at `c = 1` the prediction is
/// exactly M/G/1 Pollaczek–Khinchine, so singleton sweeps are judged as
/// before). A batched sweep reports per-batch-size service sums; the
/// overlay folds them through the batch-service moment transform to get
/// the effective *per-operation* moments the queue actually exhibits.
///
/// The measured sojourn includes a dispatch overhead the queueing model
/// knows nothing about (doorbell wake-up and scheduling latency between
/// enqueue and dequeue, present even on an empty queue), so the overlay
/// calibrates it per shard from the sweep's lowest-λ point — exactly the
/// role the uncontended calibration run plays in `--live` — and checks
/// the remaining points against `W_q(λ) + E[X] + overhead`. Agreement
/// is only expected where ρ = λ·E[X]/c stays low-to-mid (≤ 0.7): past
/// that, the bounded queue sheds, which an open M/G/c cannot model.
fn serve_overlay(path: &std::path::Path, records: &mut Vec<Json>) -> Result<(), String> {
    use cbtree_queueing::mg1::ServiceMoments;
    use cbtree_queueing::mgc::sojourn_time;
    use cbtree_queueing::BatchSizeMoments;

    let parsed = cbtree_obs::read_jsonl(path)?;
    let mut points: Vec<ServePoint> = Vec::new();
    for rec in &parsed {
        if rec.get("type").and_then(Json::as_str) != Some("serve_report") {
            continue;
        }
        let lambda = rec
            .get("lambda")
            .and_then(Json::as_f64)
            .ok_or("serve_report without lambda")?;
        let c = u32::try_from(
            rec.get("workers_per_shard")
                .and_then(Json::as_u64)
                .unwrap_or(1),
        )
        .map_err(|_| "workers_per_shard out of range")?;
        let shards = rec
            .get("shards_detail")
            .and_then(Json::as_arr)
            .ok_or("serve_report without shards_detail")?;
        for sh in shards {
            let f = |key: &str| {
                sh.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("shard record without {key}"))
            };
            // Prefer the batch-service transform when per-batch-size
            // sums are present (older artifacts predate them); the plain
            // per-op moments are the `batch_max = 1` degenerate case.
            let batch_sizes: Vec<BatchSizeMoments> = sh
                .get("batch_sizes")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|b| {
                            Some(BatchSizeMoments {
                                size: u32::try_from(b.get("size")?.as_u64()?).ok()?,
                                batches: b.get("batches")?.as_u64()?,
                                service_sum_s: b.get("service_sum_s")?.as_f64()?,
                                service_sum_sq_s2: b.get("service_sum_sq_s2")?.as_f64()?,
                            })
                        })
                        .collect()
                })
                .unwrap_or_default();
            let service = match cbtree_queueing::batch_service_moments(&batch_sizes) {
                Some(m) => m,
                None => ServiceMoments {
                    mean: f("service_mean_s")?,
                    second: f("service_m2_s2")?,
                },
            };
            points.push(ServePoint {
                lambda,
                shard: sh.get("shard").and_then(Json::as_u64).unwrap_or(0),
                c,
                arrival_rate: f("offered_rate")?,
                service,
                sojourn_mean_s: f("sojourn_mean_s")?,
                shed_rate: f("shed_rate")?,
            });
        }
    }
    if points.is_empty() {
        return Err(format!(
            "{}: no serve_report records (produce one with `serve --json`)",
            path.display()
        ));
    }

    // Calibrate the per-shard dispatch overhead at the lowest λ.
    let lambda_min = points
        .iter()
        .map(|p| p.lambda)
        .fold(f64::INFINITY, f64::min);
    let overhead_of = |shard: u64| -> Option<f64> {
        let p = points
            .iter()
            .find(|p| p.lambda == lambda_min && p.shard == shard)?;
        let predicted = sojourn_time(p.arrival_rate, p.c, p.service).ok()?;
        Some((p.sojourn_mean_s - predicted).max(0.0))
    };

    println!(
        "\nserve overlay: {} ({} points), M/G/c from measured service moments \
         (c = workers per shard; exact M/G/1 at c = 1), dispatch overhead \
         calibrated at lambda {:.0}",
        path.display(),
        points.len(),
        lambda_min
    );
    let mut t = Table::new(
        "open-loop measured vs M/G/c predicted sojourn, per shard",
        &[
            "lambda", "shard", "c", "rho", "scv", "shed%", "meas(us)", "pred(us)", "ratio",
            "verdict",
        ],
    );
    let mut checked = 0u64;
    let mut agreed = 0u64;
    for p in &points {
        let rho = p.arrival_rate * p.service.mean / f64::from(p.c);
        let overhead = overhead_of(p.shard).unwrap_or(0.0);
        let predicted = sojourn_time(p.arrival_rate, p.c, p.service)
            .ok()
            .map(|s| s + overhead);
        let ratio = predicted
            .filter(|&pr| pr > 0.0)
            .map(|pr| p.sojourn_mean_s / pr);
        // The calibration point matches by construction; judge the rest.
        let calibration = p.lambda == lambda_min;
        let verdict = match (predicted, ratio) {
            _ if calibration => "calib".to_string(),
            (None, _) => "saturated".to_string(),
            _ if rho > SERVE_OVERLAY_MAX_RHO => "high-util".to_string(),
            (_, Some(r)) => {
                checked += 1;
                let within = (1.0 / (1.0 + SERVE_OVERLAY_TOLERANCE)
                    ..=1.0 + SERVE_OVERLAY_TOLERANCE)
                    .contains(&r);
                if within {
                    agreed += 1;
                    "ok".to_string()
                } else {
                    "off".to_string()
                }
            }
            _ => "-".to_string(),
        };
        t.push(vec![
            fmt_f(p.lambda, 0),
            p.shard.to_string(),
            p.c.to_string(),
            fmt_f(rho, 3),
            fmt_f(p.service.scv(), 2),
            fmt_f(p.shed_rate * 100.0, 2),
            fmt_f(p.sojourn_mean_s * 1e6, 2),
            predicted.map_or_else(|| "-".into(), |pr| fmt_f(pr * 1e6, 2)),
            ratio.map_or_else(|| "-".into(), |r| fmt_f(r, 2)),
            verdict.clone(),
        ]);
        records.push(Json::obj(vec![
            ("type", "serve_overlay".into()),
            ("lambda", Json::f64_or_null(p.lambda)),
            ("shard", p.shard.into()),
            ("workers", p.c.into()),
            ("rho", Json::f64_or_null(rho)),
            ("service_scv", Json::f64_or_null(p.service.scv())),
            ("shed_rate", Json::f64_or_null(p.shed_rate)),
            ("measured_sojourn_s", Json::f64_or_null(p.sojourn_mean_s)),
            (
                "predicted_sojourn_s",
                predicted.map_or(Json::Null, Json::f64_or_null),
            ),
            ("overhead_s", Json::f64_or_null(overhead)),
            ("verdict", verdict.into()),
        ]));
    }
    t.print();
    if checked > 0 {
        println!(
            "agreement at rho <= {SERVE_OVERLAY_MAX_RHO}: {agreed}/{checked} points within \
             {:.0}% of the M/G/c prediction",
            SERVE_OVERLAY_TOLERANCE * 100.0
        );
    } else {
        println!(
            "no comparable points at rho <= {SERVE_OVERLAY_MAX_RHO}; sweep lower lambdas \
             for an overlap with the model's validity region"
        );
    }
    Ok(())
}
