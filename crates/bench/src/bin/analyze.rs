//! Capacity-planning CLI: point the analytical framework at *your*
//! B-tree and workload, get response times, saturation points, and an
//! algorithm recommendation — with an optional simulation cross-check.
//!
//! ```text
//! analyze [--items N] [--node-size N] [--mix qs,qi,qd] [--disk-cost D]
//!         [--memory-levels M] [--buffer-nodes B] [--rate λ]
//!         [--recovery none|naive|leaf-only] [--t-trans T] [--verify]
//! ```
//!
//! Examples:
//!
//! ```text
//! analyze --items 1000000 --node-size 64 --rate 2.0
//! analyze --mix 0.9,0.08,0.02 --disk-cost 10 --buffer-nodes 5000
//! analyze --rate 0.5 --recovery leaf-only --t-trans 200 --verify
//! ```

use cbtree_analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree_btree_model::{lru_cost_model, CostModel, NodeParams, OpMix, TreeShape};
use cbtree_sim::costs::SimCosts;
use cbtree_sim::{run_seeds, SimAlgorithm, SimConfig, SimRecovery};
use std::process::ExitCode;

struct Args {
    items: u64,
    node_size: usize,
    mix: (f64, f64, f64),
    disk_cost: f64,
    memory_levels: usize,
    buffer_nodes: Option<f64>,
    rate: Option<f64>,
    recovery: RecoveryMode,
    t_trans: f64,
    verify: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            items: 1_000_000,
            node_size: 64,
            mix: (0.3, 0.5, 0.2),
            disk_cost: 5.0,
            memory_levels: 2,
            buffer_nodes: None,
            rate: None,
            recovery: RecoveryMode::None,
            t_trans: 100.0,
            verify: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: analyze [--items N] [--node-size N] [--mix qs,qi,qd] [--disk-cost D]\n\
         \u{20}       [--memory-levels M] [--buffer-nodes B] [--rate lambda]\n\
         \u{20}       [--recovery none|naive|leaf-only] [--t-trans T] [--verify]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--items" => a.items = val().parse().unwrap_or_else(|_| usage()),
            "--node-size" => a.node_size = val().parse().unwrap_or_else(|_| usage()),
            "--mix" => {
                let v = val();
                let parts: Vec<f64> = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                if parts.len() != 3 {
                    usage();
                }
                a.mix = (parts[0], parts[1], parts[2]);
            }
            "--disk-cost" => a.disk_cost = val().parse().unwrap_or_else(|_| usage()),
            "--memory-levels" => a.memory_levels = val().parse().unwrap_or_else(|_| usage()),
            "--buffer-nodes" => a.buffer_nodes = Some(val().parse().unwrap_or_else(|_| usage())),
            "--rate" => a.rate = Some(val().parse().unwrap_or_else(|_| usage())),
            "--recovery" => {
                a.recovery = match val().as_str() {
                    "none" => RecoveryMode::None,
                    "naive" => RecoveryMode::Naive,
                    "leaf-only" => RecoveryMode::LeafOnly,
                    _ => usage(),
                }
            }
            "--t-trans" => a.t_trans = val().parse().unwrap_or_else(|_| usage()),
            "--verify" => a.verify = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

fn main() -> ExitCode {
    let args = parse_args();
    let Ok(mix) = OpMix::new(args.mix.0, args.mix.1, args.mix.2) else {
        eprintln!("error: mix must be three probabilities summing to 1");
        return ExitCode::FAILURE;
    };
    let node = match NodeParams::with_max_size(args.node_size) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shape = match TreeShape::derive(args.items, node) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cost = match args.buffer_nodes {
        Some(b) => lru_cost_model(&shape, b, args.disk_cost, 1.0),
        None => CostModel::paper_style(shape.height, args.memory_levels, args.disk_cost, 1.0),
    };
    let cost = match cost {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match ModelConfig::new(shape, mix, cost) {
        Ok(c) => c.with_recovery(args.recovery, args.t_trans),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "tree: {} items, N = {}, height {}, root fanout {:.1}; disk cost {}; \
         mix {:.2}/{:.2}/{:.2}; recovery {:?}\n",
        cfg.shape.n_items,
        args.node_size,
        cfg.height(),
        cfg.shape.root_fanout(),
        args.disk_cost,
        mix.q_search,
        mix.q_insert,
        mix.q_delete,
        args.recovery,
    );

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "max-thru", "eff-max(ρ=.5)", "search RT", "insert RT", "rho_root"
    );
    let rate = args.rate;
    let mut best: Option<(Algorithm, f64)> = None;
    for alg in Algorithm::ALL_WITH_BASELINE {
        let model = alg.model(&cfg);
        let max = model.max_throughput().unwrap_or(f64::NAN);
        let eff = model.lambda_at_root_rho(0.5).map(|x| format!("{x:>12.4}"));
        let probe = rate.unwrap_or(0.4 * max);
        let (s_rt, i_rt, rho) = match model.evaluate(probe) {
            Ok(p) => (
                format!("{:>12.2}", p.response_time_search),
                format!("{:>12.2}", p.response_time_insert),
                format!("{:>10.3}", p.root_writer_utilization()),
            ),
            Err(_) => (
                "         sat".into(),
                "         sat".into(),
                "         -".into(),
            ),
        };
        println!(
            "{:<12} {:>12.4} {} {} {} {}",
            alg.name(),
            max,
            eff.unwrap_or_else(|_| "           -".into()),
            s_rt,
            i_rt,
            rho
        );
        if let Some(r) = rate {
            if max > 1.3 * r && best.is_none_or(|(_, m)| max < m) {
                // Prefer the *least* powerful algorithm with ≥30% headroom
                // (simpler protocols when they suffice).
                best = Some((alg, max));
            }
        }
    }
    if let Some(r) = rate {
        match best {
            Some((alg, max)) => println!(
                "\nrecommendation at λ = {r}: {} (max throughput {max:.3}, ≥30% headroom)",
                alg.name()
            ),
            None => println!(
                "\nno algorithm sustains λ = {r} with headroom on this configuration; \
                 consider larger nodes (optimistic) or the link algorithm"
            ),
        }
    }

    if args.verify {
        let Some(r) = rate else {
            eprintln!("--verify needs --rate");
            return ExitCode::FAILURE;
        };
        println!("\nsimulation cross-check at λ = {r} (3 seeds):");
        for (alg, sim_alg) in [
            (
                Algorithm::NaiveLockCoupling,
                SimAlgorithm::NaiveLockCoupling,
            ),
            (
                Algorithm::OptimisticDescent,
                SimAlgorithm::OptimisticDescent,
            ),
            (Algorithm::LinkType, SimAlgorithm::LinkType),
            (Algorithm::TwoPhaseLocking, SimAlgorithm::TwoPhaseLocking),
        ] {
            let mut c = SimConfig::paper(sim_alg, r, 1);
            c.node_capacity = args.node_size;
            c.initial_items = (args.items as usize).min(200_000);
            c.costs = SimCosts {
                base: 1.0,
                disk_cost: args.disk_cost,
                memory_levels: args.memory_levels,
            };
            c.recovery = match args.recovery {
                RecoveryMode::None => SimRecovery::None,
                RecoveryMode::Naive => SimRecovery::Naive {
                    t_trans: args.t_trans,
                },
                RecoveryMode::LeafOnly => SimRecovery::LeafOnly {
                    t_trans: args.t_trans,
                },
            };
            c = c.with_min_window(100.0, 300.0);
            match run_seeds(&c, &[1, 2, 3]) {
                Ok(s) => println!(
                    "  {:<12} search {:>8.2} ± {:<6.2} insert {:>8.2} ± {:<6.2}",
                    alg.name(),
                    s.resp_search.mean,
                    s.resp_search.ci95,
                    s.resp_insert.mean,
                    s.resp_insert.ci95
                ),
                Err(e) => println!("  {:<12} {e}", alg.name()),
            }
        }
        println!(
            "(simulation uses up to 200k items; at larger --items the analysis \
             extrapolates the same per-level model)"
        );
    }
    ExitCode::SUCCESS
}
