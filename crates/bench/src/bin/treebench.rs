//! `treebench`: before/after microbenchmark of the slab node arena.
//!
//! Compares point-lookup and insert throughput over two node storages:
//!
//! - **arc**: an inline replica of the pre-arena storage — every node a
//!   separately heap-allocated `Arc<FcfsRwLock<Node>>`, internal nodes
//!   holding child `Arc`s, keys in per-node heap `Vec`s, and every
//!   descent step cloning the child handle (exactly what the old
//!   `NodeRef = Arc<RwLock<Node>>` alias did). Each step pays two
//!   refcount writes, and under concurrent readers those writes bounce
//!   the shared top-node cache lines between cores;
//! - **slab**: today's arena storage — nodes in preallocated contiguous
//!   segments, keys inline beside the node header, handles plain
//!   `u32`-indexed coordinates. A descent steps with [`NodeRef::goto`]
//!   (field assignment, no refcount traffic), and a split allocates
//!   nothing but a free-list pop;
//! - **slab/olc** (lookups only): the full tree under `Protocol::Olc`,
//!   whose readers drop the read latches too — the latch-free read path
//!   whose reclamation safety the arena's generation-checked handles
//!   provide.
//!
//! Both sides run the *same* miniature descent and insert code —
//! latched hand-over-hand lookups, full-chain exclusive crabbing
//! inserts with node splits — so the comparison isolates the storage
//! layer. Both trees are grown by the *same* shuffled insert sequence
//! through the same split rules, so their shapes are identical and each
//! storage ends up with the node layout it naturally produces: the Arc
//! tree's nodes scattered across the heap between `Vec` reallocations,
//! the slab's packed into its preallocated segments.
//!
//! A final scenario leaves the storage comparison behind and measures
//! the batched execution pipeline on the real tree: the same
//! sequential upsert stream executed one op at a time versus in sorted
//! chunks through [`ConcurrentBTree::execute_batch`], whose leaf-reuse
//! amortization is what the service layer's ingress batching buys.
//!
//! Each comparison runs as interleaved pass pairs (drift
//! hits both sides alike) and reports the best-vs-best slab/arc ratio,
//! which rejects the one-sided preemption noise of loaded hosts. Results
//! print as a table and are written to `BENCH_tree.json` (hand-rolled
//! JSON, no dependencies); `--assert-overhead PCT` guards the ratios
//! against a committed reference file so CI can catch storage-layer
//! regressions.
//!
//! ```text
//! cargo run --release -p cbtree-bench --bin treebench            # full
//! cargo run --release -p cbtree-bench --bin treebench -- --smoke # CI
//! treebench --smoke --assert-overhead 10       # CI regression guard
//! treebench --out /tmp/b.json --reference BENCH_tree.json
//! ```

use cbtree_bench::microbench::Measurement;
use cbtree_btree::node::{Children, Node, NodeId, NodeRef};
use cbtree_btree::{Arena, BatchOp, ConcurrentBTree, Protocol};
use cbtree_obs::Json;
use cbtree_sync::FcfsRwLock as RwLock;
use cbtree_sync::SamplePeriod;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Node capacity on both sides (max keys before a split).
const CAP: usize = 64;

// ---------------------------------------------------------------------
// Baseline: the pre-arena node storage, reproduced in miniature. One
// heap allocation per node, child links and descent handles all `Arc`.
// ---------------------------------------------------------------------

type ArcRef = Arc<RwLock<ArcNode>>;

enum ArcEntries {
    /// Leaf payloads: `vals[i]` is the value for `keys[i]`.
    Leaf(Vec<u64>),
    /// Internal children: `kids.len() == keys.len() + 1`.
    Internal(Vec<ArcRef>),
}

struct ArcNode {
    /// Sorted keys; separators for internal nodes (`kids[i]` covers
    /// keys below `keys[i]`, the last child everything above).
    keys: Vec<u64>,
    entries: ArcEntries,
}

/// The Arc-storage miniature tree: lookups descend with per-step handle
/// clones, inserts crab exclusively down the full chain and split full
/// nodes into fresh heap allocations.
struct ArcMini {
    root: Mutex<ArcRef>,
}

/// Builds the Arc mini by inserting `keys` one by one — the only way
/// the old storage ever built a tree. Node allocations land wherever
/// the allocator puts them at split time, interleaved with the growing
/// leaves' key/value `Vec` reallocations: the scattered heap layout a
/// live Arc tree actually has, and exactly the fragmentation the arena
/// was built to remove.
fn build_arc(keys: &[u64]) -> ArcMini {
    let leaf = ArcNode {
        keys: Vec::new(),
        entries: ArcEntries::Leaf(Vec::new()),
    };
    let mini = ArcMini {
        root: Mutex::new(Arc::new(RwLock::new(leaf))),
    };
    for &k in keys {
        mini.insert(k, k);
    }
    mini
}

impl ArcMini {
    /// Latched hand-over-hand lookup with per-step handle clones — the
    /// descent the old `NodeRef = Arc<RwLock<Node>>` storage performed.
    fn get(&self, key: u64) -> Option<u64> {
        let mut cur = Arc::clone(&self.root.lock().unwrap());
        loop {
            let next = {
                let g = cur.read();
                match &g.entries {
                    ArcEntries::Leaf(vals) => {
                        return g.keys.binary_search(&key).ok().map(|i| vals[i])
                    }
                    ArcEntries::Internal(kids) => {
                        Arc::clone(&kids[g.keys.partition_point(|&s| s <= key)])
                    }
                }
            };
            cur = next;
        }
    }

    /// Upsert under full-chain exclusive crabbing (every ancestor stays
    /// write-latched until the op finishes, so split propagation is
    /// trivially safe; the root latch serializes writers — identically
    /// on both sides, so the storage comparison is unaffected).
    fn insert(&self, key: u64, val: u64) {
        let mut root = self.root.lock().unwrap();
        let handle = Arc::clone(&root);
        if let Some((sep, right)) = arc_insert_rec(&handle, key, val) {
            let node = ArcNode {
                keys: vec![sep],
                entries: ArcEntries::Internal(vec![Arc::clone(&root), right]),
            };
            *root = Arc::new(RwLock::new(node));
        }
    }
}

/// Recursive insert step: returns the separator and right sibling when
/// this node split. The caller's guard is still held (full chain).
fn arc_insert_rec(cur: &ArcRef, key: u64, val: u64) -> Option<(u64, ArcRef)> {
    let mut g = cur.write();
    let i = g.keys.partition_point(|&s| s <= key);
    match &g.entries {
        ArcEntries::Leaf(_) => {
            match g.keys.binary_search(&key) {
                Ok(i) => {
                    if let ArcEntries::Leaf(vals) = &mut g.entries {
                        vals[i] = val;
                    }
                    return None;
                }
                Err(i) => {
                    g.keys.insert(i, key);
                    if let ArcEntries::Leaf(vals) = &mut g.entries {
                        vals.insert(i, val);
                    }
                }
            }
            if g.keys.len() <= CAP {
                return None;
            }
            let mid = g.keys.len() / 2;
            let rkeys = g.keys.split_off(mid);
            let rvals = match &mut g.entries {
                ArcEntries::Leaf(vals) => vals.split_off(mid),
                ArcEntries::Internal(_) => unreachable!(),
            };
            let sep = rkeys[0];
            let right = ArcNode {
                keys: rkeys,
                entries: ArcEntries::Leaf(rvals),
            };
            Some((sep, Arc::new(RwLock::new(right))))
        }
        ArcEntries::Internal(kids) => {
            let child = Arc::clone(&kids[i]);
            let (sep, right) = arc_insert_rec(&child, key, val)?;
            g.keys.insert(i, sep);
            if let ArcEntries::Internal(kids) = &mut g.entries {
                kids.insert(i + 1, right);
            }
            if g.keys.len() <= CAP {
                return None;
            }
            // Promote keys[mid]; upper halves go to the new sibling.
            let mid = g.keys.len() / 2;
            let up = g.keys[mid];
            let rkeys = g.keys.split_off(mid + 1);
            g.keys.pop();
            let rkids = match &mut g.entries {
                ArcEntries::Internal(kids) => kids.split_off(mid + 1),
                ArcEntries::Leaf(_) => unreachable!(),
            };
            let right = ArcNode {
                keys: rkeys,
                entries: ArcEntries::Internal(rkids),
            };
            Some((up, Arc::new(RwLock::new(right))))
        }
    }
}

// ---------------------------------------------------------------------
// Slab side: the same miniature tree over the real Arena + Node types.
// ---------------------------------------------------------------------

/// The slab-storage miniature tree, mirroring [`ArcMini`] op for op:
/// same routing, same crabbing discipline, same split points — only the
/// storage differs. Inserts thread a reusable handle path through the
/// recursion so every descent step is a [`NodeRef::goto`] rebind.
struct SlabMini {
    arena: Arena<u64>,
    root: Mutex<NodeId>,
}

/// Path buffer depth: comfortably above any height these trees reach.
const MAX_HEIGHT: usize = 12;

/// Builds the slab mini by the same insert sequence as [`build_arc`].
/// Both minis share routing and split rules, so identical input order
/// yields *identical* tree shapes — the comparison isolates storage.
fn build_slab(keys: &[u64]) -> SlabMini {
    let arena: Arena<u64> = Arena::new(SamplePeriod::EXACT);
    let root = arena.alloc(Node::new_leaf_for(CAP)).id();
    let mini = SlabMini {
        arena,
        root: Mutex::new(root),
    };
    let mut path: Vec<NodeRef<u64>> = (0..MAX_HEIGHT).map(|_| mini.arena.at(root)).collect();
    for &k in keys {
        mini.insert(&mut path, k, k);
    }
    mini
}

impl SlabMini {
    /// Latched hand-over-hand lookup; a step is a `goto` rebind.
    fn get(&self, path: &mut NodeRef<u64>, key: u64) -> Option<u64> {
        path.goto(*self.root.lock().unwrap());
        loop {
            let next = {
                let g = path.read();
                match &g.children {
                    Children::Leaf(_) => return g.leaf_get(key).copied(),
                    Children::Internal(_) => g.child_for(key),
                }
            };
            path.goto(next);
        }
    }

    /// Upsert under the same full-chain exclusive crabbing as
    /// [`ArcMini::insert`]; `path` is a reusable per-thread handle
    /// buffer (one slot per level) so no handle is constructed per op.
    fn insert(&self, path: &mut [NodeRef<u64>], key: u64, val: u64) {
        let mut root = self.root.lock().unwrap();
        path[0].goto(*root);
        if let Some((sep, right)) = slab_insert_rec(path, key, val) {
            let mut node = Node::new_leaf();
            node.level = {
                let (first, _) = path.split_first().expect("non-empty path");
                first.read().level + 1
            };
            node.keys.push(sep);
            let mut kids = cbtree_btree::arena::InlineVec::new();
            kids.push(*root);
            kids.push(right);
            node.children = Children::Internal(kids);
            *root = self.arena.alloc(node).id();
        }
    }
}

/// Recursive insert step over slab storage — the mirror image of
/// [`arc_insert_rec`]: `path[0]` is the current node, `path[1..]` the
/// scratch handles for the levels below.
fn slab_insert_rec(path: &mut [NodeRef<u64>], key: u64, val: u64) -> Option<(u64, NodeId)> {
    let (cur, rest) = path.split_first_mut().expect("path taller than tree");
    let mut g = cur.write();
    if g.is_leaf() {
        match g.keys.binary_search(&key) {
            Ok(i) => {
                if let Children::Leaf(vals) = &mut g.children {
                    vals[i] = val;
                }
                return None;
            }
            Err(i) => {
                g.keys.insert(i, key);
                if let Children::Leaf(vals) = &mut g.children {
                    vals.insert(i, val);
                }
            }
        }
        if g.keys.len() <= CAP {
            return None;
        }
        let mid = g.keys.len() / 2;
        let rkeys = g.keys.split_off(mid);
        let rvals = match &mut g.children {
            Children::Leaf(vals) => vals.split_off(mid),
            Children::Internal(_) => unreachable!(),
        };
        let sep = rkeys[0];
        let mut right = Node::new_leaf_for(CAP);
        right.keys = rkeys;
        if let Children::Leaf(vals) = &mut right.children {
            vals.extend(rvals);
        }
        return Some((sep, cur.arena().alloc(right).id()));
    }
    let i = g.keys.partition_point(|&s| s <= key);
    let child = match &g.children {
        Children::Internal(kids) => kids[i],
        Children::Leaf(_) => unreachable!(),
    };
    rest[0].goto(child);
    let (sep, right_id) = slab_insert_rec(rest, key, val)?;
    g.keys.insert(i, sep);
    if let Children::Internal(kids) = &mut g.children {
        kids.insert(i + 1, right_id);
    }
    if g.keys.len() <= CAP {
        return None;
    }
    let mid = g.keys.len() / 2;
    let up = g.keys[mid];
    let rkeys = g.keys.split_off(mid + 1);
    g.keys.pop();
    let rkids = match &mut g.children {
        Children::Internal(kids) => kids.split_off(mid + 1),
        Children::Leaf(_) => unreachable!(),
    };
    let mut right = Node::new_leaf();
    right.keys = rkeys;
    right.children = Children::Internal(rkids);
    right.level = g.level;
    Some((up, cur.arena().alloc(right).id()))
}

// ---------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------

/// Splitmix64, for a deterministic per-thread key scatter.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Interleaved pass pairs: alternates one `arc` pass and one `slab`
/// pass per round (so machine-speed drift hits both sides alike — see
/// `lockbench`) and reports the best-vs-best slab/arc ratio. Scheduler
/// noise on a loaded or single-core host is one-sided (a preemption
/// storm only ever *adds* time to the pass it lands on), so the minimum
/// over rounds rejects it far better than any per-round pairing.
fn bench_pair(
    rounds: usize,
    mut arc: impl FnMut(),
    mut slab: impl FnMut(),
) -> (Vec<std::time::Duration>, Vec<std::time::Duration>, f64) {
    arc();
    slab(); // warmup
    let mut arc_samples = Vec::with_capacity(rounds);
    let mut slab_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        arc();
        arc_samples.push(t0.elapsed());
        let t0 = Instant::now();
        slab();
        slab_samples.push(t0.elapsed());
    }
    let best = |samples: &[std::time::Duration]| {
        samples
            .iter()
            .min()
            .expect("at least one round")
            .as_secs_f64()
    };
    let ratio = best(&slab_samples) / best(&arc_samples).max(f64::MIN_POSITIVE);
    (arc_samples, slab_samples, ratio)
}

struct Scenario {
    name: String,
    ops: u64,
    ns_per_op: f64,
}

struct Args {
    smoke: bool,
    out: PathBuf,
    reference: PathBuf,
    assert_overhead: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_tree.json"),
        reference: PathBuf::from("BENCH_tree.json"),
        assert_overhead: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} requires an argument"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = PathBuf::from(value()?),
            "--reference" => args.reference = PathBuf::from(value()?),
            "--assert-overhead" => {
                args.assert_overhead = Some(value()?.parse().map_err(|e| format!("{flag}: {e}"))?);
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?} (flags: --smoke --out PATH --reference PATH \
                     --assert-overhead PCT)"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // Read the reference before writing: `--out` may point at the same
    // file it is compared against.
    let reference = args.assert_overhead.map(|_| {
        std::fs::read_to_string(&args.reference)
            .map_err(|e| format!("{}: {e}", args.reference.display()))
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
    });
    let smoke = args.smoke;
    // Key count is mode-independent so smoke and full runs measure the
    // same tree shape and their ratios are comparable for the guard.
    let key_count = 65_536u64;
    let (per_get, per_ins, samples) = if smoke {
        (40_000u64, 10_000u64, 5usize)
    } else {
        (200_000u64, 50_000u64, 9)
    };
    let thread_counts: &[u64] = &[1, 4, 8];

    println!(
        "treebench ({} mode): {} keys, capacity {}, {} lookups / {} inserts per thread\n",
        if smoke { "smoke" } else { "full" },
        key_count,
        CAP,
        per_get,
        per_ins
    );

    // Even keys only (the odd keys in between are the fresh-insert
    // pool), inserted in shuffled order so both trees grow through the
    // realistic random-split path rather than the ascending fast path.
    let keys: Vec<u64> = {
        let mut keys: Vec<u64> = (0..key_count).map(|k| k * 2).collect();
        let mut state = 0x5EED_F00Du64;
        for i in (1..keys.len()).rev() {
            keys.swap(i, (splitmix(&mut state) % (i as u64 + 1)) as usize);
        }
        keys
    };

    let mut results: Vec<Scenario> = Vec::new();
    let mut guard_ratios: Vec<(String, f64)> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let record =
        |results: &mut Vec<Scenario>, name: String, ops: u64, samples: Vec<std::time::Duration>| {
            let m = Measurement {
                name: name.clone(),
                elements: ops,
                samples,
            };
            println!("{}", m.report());
            results.push(Scenario {
                name,
                ops,
                ns_per_op: m.best().as_secs_f64() * 1e9 / ops as f64,
            });
        };

    // --- point lookups ---
    let arc = build_arc(&keys);
    let slab = build_slab(&keys);
    let slab_olc = ConcurrentBTree::new(Protocol::Olc, CAP);
    for &k in &keys {
        slab_olc.insert(k, k);
    }

    for &threads in thread_counts {
        let ops = threads * per_get;
        let lookups = |get: &(dyn Fn(u64, u64) -> Option<u64> + Sync)| {
            std::thread::scope(|s| {
                for t in 0..threads {
                    s.spawn(move || {
                        let mut state = 0xC8_1EE5 ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        let mut hits = 0u64;
                        for _ in 0..per_get {
                            let k = (splitmix(&mut state) % key_count) * 2;
                            hits += get(t, k).is_some() as u64;
                        }
                        assert_eq!(std::hint::black_box(hits), per_get, "all keys present");
                    });
                }
            })
        };
        let (arc_s, slab_s, ratio) = bench_pair(
            samples,
            || lookups(&|_, k| arc.get(k)),
            || {
                // One reusable handle per worker; every step is a goto.
                let handles: Vec<Mutex<NodeRef<u64>>> = (0..threads)
                    .map(|_| Mutex::new(slab.arena.at(*slab.root.lock().unwrap())))
                    .collect();
                let handles = &handles;
                let slab = &slab;
                lookups(&move |t, k| slab.get(&mut handles[t as usize].lock().unwrap(), k))
            },
        );
        record(&mut results, format!("get-{threads}t/arc"), ops, arc_s);
        record(&mut results, format!("get-{threads}t/slab"), ops, slab_s);
        guard_ratios.push((format!("get-{threads}t"), ratio));
        speedups.push((
            format!("get-{threads}t"),
            1.0 / ratio.max(f64::MIN_POSITIVE),
        ));

        let m = cbtree_bench::microbench::bench(
            &format!("get-{threads}t/slab-olc"),
            ops,
            samples,
            || {
                lookups(&|_, k| slab_olc.get(&k));
            },
        );
        results.push(Scenario {
            name: m.name.clone(),
            ops,
            ns_per_op: m.best().as_secs_f64() * 1e9 / ops as f64,
        });
    }

    // --- inserts (fresh minis per thread count, so split rates match) ---
    for &threads in thread_counts {
        let ops = threads * per_ins;
        let arc = build_arc(&keys);
        let slab = build_slab(&keys);
        // Every 16th op inserts a *fresh* odd key drawn from a shared
        // counter (forcing real node splits and allocations); the rest
        // upsert existing keys. Each side consumes its own pool on the
        // same schedule, and once a pool drains its fresh slots fall
        // back to upserts — so every round's op mix stays paired.
        let arc_fresh = AtomicU64::new(0);
        let slab_fresh = AtomicU64::new(0);
        let inserts = |fresh: &AtomicU64, ins: &(dyn Fn(u64, u64, u64) + Sync)| {
            std::thread::scope(|s| {
                for t in 0..threads {
                    s.spawn(move || {
                        let mut state = 0x1215_EED5 ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        for i in 0..per_ins {
                            let k = if i % 16 == 0 {
                                let idx = fresh.fetch_add(1, Ordering::Relaxed);
                                if idx < key_count {
                                    idx * 2 + 1
                                } else {
                                    (splitmix(&mut state) % key_count) * 2
                                }
                            } else {
                                (splitmix(&mut state) % key_count) * 2
                            };
                            ins(t, k, i);
                        }
                    });
                }
            })
        };
        let (arc_s, slab_s, ratio) = bench_pair(
            samples,
            || inserts(&arc_fresh, &|_, k, v| arc.insert(k, v)),
            || {
                let paths: Vec<Mutex<Vec<NodeRef<u64>>>> = (0..threads)
                    .map(|_| {
                        let root = *slab.root.lock().unwrap();
                        Mutex::new((0..MAX_HEIGHT).map(|_| slab.arena.at(root)).collect())
                    })
                    .collect();
                let paths = &paths;
                let slab = &slab;
                inserts(&slab_fresh, &move |t, k, v| {
                    slab.insert(&mut paths[t as usize].lock().unwrap(), k, v)
                })
            },
        );
        record(&mut results, format!("ins-{threads}t/arc"), ops, arc_s);
        record(&mut results, format!("ins-{threads}t/slab"), ops, slab_s);
        guard_ratios.push((format!("ins-{threads}t"), ratio));
        speedups.push((
            format!("ins-{threads}t"),
            1.0 / ratio.max(f64::MIN_POSITIVE),
        ));
    }

    // --- sorted-batch vs singleton execution (real BLink tree) ---
    //
    // The service layer drains ingress rings in batches and hands each
    // batch to `execute_batch`, whose key-sorted order lets adjacent
    // ops reuse the previous op's leaf instead of descending from the
    // root. This scenario measures that amortization directly: the same
    // sequential upsert stream executed one op at a time versus in
    // sorted chunks, on the same tree (upserts never change its shape,
    // so every pass sees identical structure). The guard ratio is
    // batched/singleton time — below 1.0 means amortization pays.
    {
        const CHUNK: usize = 32;
        let tree = ConcurrentBTree::new(Protocol::BLink, CAP);
        for &k in &keys {
            tree.insert(k, k);
        }
        let ops = per_ins - per_ins % CHUNK as u64;
        let reuses = AtomicU64::new(0);
        let (single_s, batch_s, ratio) = bench_pair(
            samples,
            || {
                for next in 0..ops {
                    let k = (next % key_count) * 2;
                    std::hint::black_box(tree.insert(k, k + 1));
                }
            },
            || {
                let mut reuse = 0u64;
                for chunk in 0..ops / CHUNK as u64 {
                    let base = chunk * CHUNK as u64;
                    let batch: Vec<BatchOp<u64>> = (0..CHUNK as u64)
                        .map(|i| {
                            let k = ((base + i) % key_count) * 2;
                            BatchOp::Insert(k, k + 1)
                        })
                        .collect();
                    let out = tree.execute_batch(batch);
                    reuse += out.summary.leaf_reuses;
                    std::hint::black_box(&out.results);
                }
                reuses.store(reuse, Ordering::Relaxed);
            },
        );
        record(&mut results, "batch-1t/singleton".into(), ops, single_s);
        record(&mut results, "batch-1t/batched".into(), ops, batch_s);
        guard_ratios.push(("batch-1t".into(), ratio));
        println!(
            "sorted-batch amortization (chunks of {CHUNK}, sequential upserts): \
             {:.2}x vs singleton, {:.1}% leaf reuse\n",
            1.0 / ratio.max(f64::MIN_POSITIVE),
            100.0 * reuses.load(Ordering::Relaxed) as f64 / ops as f64
        );
    }

    // --- before/after table ---
    let ns_of = |name: &str| results.iter().find(|s| s.name == name).map(|s| s.ns_per_op);
    println!("\nbefore/after storage cost (ns per op):");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9}",
        "scenario", "arc", "slab", "slab-olc", "speedup"
    );
    for (scenario, speedup) in &speedups {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
            scenario,
            ns_of(&format!("{scenario}/arc")).unwrap_or(f64::NAN),
            ns_of(&format!("{scenario}/slab")).unwrap_or(f64::NAN),
            ns_of(&format!("{scenario}/slab-olc")).unwrap_or(f64::NAN),
            speedup
        );
    }

    // --- BENCH_tree.json ---
    let json = Json::obj(vec![
        ("bench", "tree".into()),
        ("schema", cbtree_obs::SCHEMA_VERSION.into()),
        ("mode", if smoke { "smoke" } else { "full" }.into()),
        ("keys", key_count.into()),
        ("capacity", (CAP as u64).into()),
        (
            "results",
            Json::arr(results.iter().map(|s| {
                Json::obj(vec![
                    ("name", s.name.as_str().into()),
                    ("ops", s.ops.into()),
                    (
                        "ns_per_op",
                        Json::f64_or_null((s.ns_per_op * 100.0).round() / 100.0),
                    ),
                ])
            })),
        ),
        (
            "speedup_vs_arc",
            Json::obj(
                speedups
                    .iter()
                    .map(|(s, x)| (s.as_str(), Json::f64_or_null((x * 100.0).round() / 100.0))),
            ),
        ),
        (
            "guard_ratios",
            Json::obj(guard_ratios.iter().map(|(s, r)| {
                (
                    s.as_str(),
                    Json::f64_or_null((r * 10000.0).round() / 10000.0),
                )
            })),
        ),
    ]);
    let text = json.to_string().expect("nulls replace non-finite values") + "\n";
    if let Err(e) = std::fs::write(&args.out, text) {
        eprintln!("error: writing {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", args.out.display());

    // The arena exists to make concurrent descents cheap; warn loudly if
    // the build being benchmarked has lost that property.
    for (scenario, speedup) in &speedups {
        let threads: u64 = scenario[4..scenario.len() - 1].parse().unwrap_or(1);
        if threads >= 4 && *speedup < 1.0 {
            eprintln!(
                "warning: {scenario} slab speedup {speedup:.2}x below 1x \
                 (noisy machine, debug build, or a regression)"
            );
        }
    }

    // --- regression guard vs the reference file ---
    let mut failed = false;
    if let Some(reference) = reference {
        let pct = args.assert_overhead.unwrap_or(0.0);
        match reference {
            Err(e) => {
                eprintln!("error: --assert-overhead reference: {e}");
                failed = true;
            }
            Ok(reference) => {
                for (scenario, cur) in &guard_ratios {
                    let reference_ratio = reference
                        .get("guard_ratios")
                        .and_then(|g| g.get(scenario))
                        .and_then(Json::as_f64);
                    match reference_ratio {
                        Some(reference_ratio) => {
                            let regression = (cur / reference_ratio - 1.0) * 100.0;
                            if regression > pct {
                                eprintln!(
                                    "error: {scenario} slab/arc ratio {cur:.4} is \
                                     {regression:+.1}% vs reference {reference_ratio:.4} \
                                     (budget {pct}%)"
                                );
                                failed = true;
                            } else {
                                println!(
                                    "regression guard: {scenario} ratio {cur:.4} vs reference \
                                     {reference_ratio:.4} ({regression:+.1}%, budget {pct}%)"
                                );
                            }
                        }
                        None => {
                            eprintln!("error: {scenario} missing from the reference file");
                            failed = true;
                        }
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
