//! Regenerates the tables and figures of Johnson & Shasha (PODS 1990).
//!
//! ```text
//! experiments [--quick] [--no-sim] [--out DIR] [--seeds a,b,c]
//!             [--report FILE.md] <name>...
//! ```
//!
//! `<name>` is one of `fig3` … `fig16`, `ablation-rot-se2`,
//! `ablation-merge-policy`, or `all`. Each table is printed and, with
//! `--out`, also written as CSV.

use cbtree_bench::{run_figure, ExpOptions, FIGURES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--no-sim] [--out DIR] [--seeds a,b,c] \
         [--report FILE.md] <name>...\n\
         names: {} or `all`",
        FIGURES.join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = ExpOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut report: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                opts.quick = true;
                opts.seeds = vec![1, 2];
            }
            "--no-sim" => opts.with_sim = false,
            "--report" => {
                let Some(path) = args.next() else { usage() };
                report = Some(PathBuf::from(path));
            }
            "--out" => {
                let Some(dir) = args.next() else { usage() };
                opts.out_dir = Some(PathBuf::from(dir));
            }
            "--seeds" => {
                let Some(list) = args.next() else { usage() };
                match list.split(',').map(|s| s.trim().parse::<u64>()).collect() {
                    Ok(seeds) => opts.seeds = seeds,
                    Err(_) => usage(),
                }
            }
            "--help" | "-h" => usage(),
            name if name.starts_with('-') => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        usage();
    }
    let mut report_body = String::from(
        "# cbtree experiment report\n\nRegenerated tables for Johnson & Shasha \
         (PODS 1990). See EXPERIMENTS.md for the paper-vs-measured commentary.\n\n",
    );
    for name in &names {
        let start = std::time::Instant::now();
        for table in run_figure(name, &opts) {
            table.print();
            report_body.push_str("```text\n");
            report_body.push_str(&table.render());
            report_body.push_str("```\n\n");
        }
        eprintln!("[{name} done in {:.1}s]\n", start.elapsed().as_secs_f64());
    }
    if let Some(path) = report {
        if let Err(e) = std::fs::write(&path, report_body) {
            eprintln!("error: failed to write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {}", path.display());
    }
    ExitCode::SUCCESS
}
