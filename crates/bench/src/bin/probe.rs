fn main() {
    use cbtree_sim::runner::construction_tree;
    use cbtree_sim::{SimAlgorithm, SimConfig};

    let cfg = SimConfig::paper(SimAlgorithm::LinkType, 150.0, 1);
    let tree = construction_tree(&cfg).unwrap();
    // leaf fill histogram
    let mut full = 0u64;
    let mut total = 0u64;
    let mut hist = [0u64; 15];
    let mut l2_full = 0u64;
    let mut l2_total = 0u64;
    for id in 0..tree.node_count() {
        let n = tree.node(id);
        if n.level == 1 {
            total += 1;
            hist[n.keys.len().min(14)] += 1;
            if n.keys.len() >= 13 {
                full += 1;
            }
        }
        if n.level == 2 {
            l2_total += 1;
            if n.keys.len() >= 13 {
                l2_full += 1;
            }
        }
    }
    println!(
        "leaves {total}, full fraction {:.4} (corollary 0.0679)",
        full as f64 / total as f64
    );
    println!(
        "L2 {l2_total}, full fraction {:.4} (model 0.1116)",
        l2_full as f64 / l2_total as f64
    );
    println!("hist {:?}", hist);
    println!(
        "splits during construction: {}, items {}",
        tree.splits, tree.item_count
    );
    // key-weighted: probability an INSERT (uniform key) hits a full leaf is
    // weighted by key-range coverage, approx uniform per leaf count… but
    // ranges differ: weight by (keys+1)? print both
    let mut wfull = 0.0;
    let mut wtot = 0.0;
    for id in 0..tree.node_count() {
        let n = tree.node(id);
        if n.level == 1 {
            let w = n.keys.len() as f64 + 1.0;
            wtot += w;
            if n.keys.len() >= 13 {
                wfull += w;
            }
        }
    }
    println!("insert-weighted full fraction {:.4}", wfull / wtot);
}
