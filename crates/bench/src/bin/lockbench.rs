//! `lockbench`: before/after microbenchmark of the FCFS lock.
//!
//! Compares three locks on the same scenarios:
//!
//! - **baseline**: an inline replica of the original `FcfsRwLock` — every
//!   acquire and release takes the queue `Mutex`, and every acquisition
//!   reads `Instant::now()` twice (wait and hold timing always on);
//! - **fcfs/exact**: today's packed-word fast-path lock with exact
//!   (N = 1) timing;
//! - **fcfs/sampled**: the same lock timing 1 in 64 acquisitions.
//!
//! Scenarios: uncontended shared and exclusive acquire+release (the hot
//! path of every B-tree descent), a contended all-writer burst, and a
//! mixed 15/16-read workload. Results print as a table and are written to
//! `BENCH_lock.json` (hand-rolled JSON, no dependencies) so CI can track
//! the perf trajectory.
//!
//! ```text
//! cargo run --release -p cbtree-bench --bin lockbench            # full
//! cargo run --release -p cbtree-bench --bin lockbench -- --smoke # CI
//! ```

use cbtree_bench::microbench::bench;
use cbtree_sync::{FcfsRwLock, SamplePeriod};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------
// Baseline: the pre-fast-path lock, reproduced verbatim in miniature.
// Acquire and release each take the mutex; wait and hold durations are
// measured on every acquisition, like the original `LockStats` did.
// ---------------------------------------------------------------------

#[derive(Default)]
struct BaselineState {
    active_readers: usize,
    writer_active: bool,
    next_id: u64,
    queue: VecDeque<(u64, bool)>,
    granted: Vec<u64>,
}

struct BaselineStats {
    acquires: AtomicU64,
    wait_ns: AtomicU64,
    hold_ns: AtomicU64,
    wait_hist: [AtomicU64; 40],
}

impl Default for BaselineStats {
    fn default() -> Self {
        Self {
            acquires: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            hold_ns: AtomicU64::new(0),
            wait_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[derive(Default)]
struct BaselineLock {
    state: Mutex<BaselineState>,
    cv: Condvar,
    stats: BaselineStats,
}

impl BaselineLock {
    fn acquire(&self, exclusive: bool) -> Instant {
        let t_arrive = Instant::now();
        let mut st = self.state.lock().unwrap();
        let compatible = !st.writer_active && (!exclusive || st.active_readers == 0);
        if st.queue.is_empty() && compatible {
            if exclusive {
                st.writer_active = true;
            } else {
                st.active_readers += 1;
            }
        } else {
            let id = st.next_id;
            st.next_id += 1;
            st.queue.push_back((id, exclusive));
            loop {
                st = self.cv.wait(st).unwrap();
                if let Some(pos) = st.granted.iter().position(|&g| g == id) {
                    st.granted.swap_remove(pos);
                    break;
                }
            }
        }
        drop(st);
        let wait = t_arrive.elapsed().as_nanos() as u64;
        self.stats.acquires.fetch_add(1, Ordering::Relaxed);
        self.stats.wait_ns.fetch_add(wait, Ordering::Relaxed);
        let bucket = (64 - u64::leading_zeros(wait.max(1)) as usize - 1).min(39);
        self.stats.wait_hist[bucket].fetch_add(1, Ordering::Relaxed);
        Instant::now()
    }

    fn release(&self, exclusive: bool, granted_at: Instant) {
        self.stats
            .hold_ns
            .fetch_add(granted_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        if exclusive {
            st.writer_active = false;
        } else {
            st.active_readers -= 1;
        }
        let mut granted_any = false;
        while let Some(&(id, exc)) = st.queue.front() {
            let compatible = !st.writer_active && (!exc || st.active_readers == 0);
            if !compatible {
                break;
            }
            st.queue.pop_front();
            if exc {
                st.writer_active = true;
                st.granted.push(id);
                granted_any = true;
                break;
            }
            st.active_readers += 1;
            st.granted.push(id);
            granted_any = true;
        }
        drop(st);
        if granted_any {
            self.cv.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// Scenario drivers, generic over the lock via closures.
// ---------------------------------------------------------------------

/// Single-thread acquire+release round trips.
fn uncontended(n: u64, mut cycle: impl FnMut()) {
    for _ in 0..n {
        cycle();
    }
}

/// `threads` workers hammer the same lock concurrently; `op(t, i)` runs
/// one acquire+release cycle.
fn hammer(threads: u64, per_thread: u64, op: impl Fn(u64, u64) + Sync) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                for i in 0..per_thread {
                    op(t, i);
                }
            });
        }
    });
}

struct Scenario {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_unc, n_burst_per_thread, n_mixed_per_thread, samples) = if smoke {
        (50_000u64, 10_000u64, 20_000u64, 3usize)
    } else {
        (1_000_000, 100_000, 200_000, 7)
    };
    let threads = 4u64;

    println!(
        "lockbench ({} mode): {} uncontended ops, {} threads x {} burst ops\n",
        if smoke { "smoke" } else { "full" },
        n_unc,
        threads,
        n_burst_per_thread
    );

    let mut results: Vec<Scenario> = Vec::new();
    let mut record = |name: &'static str, ops: u64, m: &cbtree_bench::microbench::Measurement| {
        results.push(Scenario {
            name,
            ops,
            ns_per_op: m.best().as_secs_f64() * 1e9 / ops as f64,
        });
    };

    // --- uncontended shared ---
    {
        let lock = BaselineLock::default();
        let m = bench("uncontended-read/baseline", n_unc, samples, || {
            uncontended(n_unc, || {
                let g = lock.acquire(false);
                lock.release(false, g);
            })
        });
        record("uncontended-read/baseline", n_unc, &m);
    }
    {
        let lock = FcfsRwLock::new(0u64);
        let m = bench("uncontended-read/fcfs-exact", n_unc, samples, || {
            uncontended(n_unc, || {
                std::hint::black_box(*lock.read());
            })
        });
        record("uncontended-read/fcfs-exact", n_unc, &m);
    }
    {
        let lock = FcfsRwLock::with_sampling(0u64, SamplePeriod::every(64));
        let m = bench("uncontended-read/fcfs-sampled", n_unc, samples, || {
            uncontended(n_unc, || {
                std::hint::black_box(*lock.read());
            })
        });
        record("uncontended-read/fcfs-sampled", n_unc, &m);
    }

    // --- uncontended exclusive ---
    {
        let lock = BaselineLock::default();
        let m = bench("uncontended-write/baseline", n_unc, samples, || {
            uncontended(n_unc, || {
                let g = lock.acquire(true);
                lock.release(true, g);
            })
        });
        record("uncontended-write/baseline", n_unc, &m);
    }
    {
        let lock = FcfsRwLock::new(0u64);
        let m = bench("uncontended-write/fcfs-exact", n_unc, samples, || {
            uncontended(n_unc, || {
                *lock.write() += 1;
            })
        });
        record("uncontended-write/fcfs-exact", n_unc, &m);
    }
    {
        let lock = FcfsRwLock::with_sampling(0u64, SamplePeriod::every(64));
        let m = bench("uncontended-write/fcfs-sampled", n_unc, samples, || {
            uncontended(n_unc, || {
                *lock.write() += 1;
            })
        });
        record("uncontended-write/fcfs-sampled", n_unc, &m);
    }

    // --- contended all-writer burst ---
    let burst_ops = threads * n_burst_per_thread;
    {
        let lock = Arc::new(BaselineLock::default());
        let m = bench("contended-burst/baseline", burst_ops, samples, || {
            hammer(threads, n_burst_per_thread, |_, _| {
                let g = lock.acquire(true);
                lock.release(true, g);
            })
        });
        record("contended-burst/baseline", burst_ops, &m);
    }
    {
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let m = bench("contended-burst/fcfs-exact", burst_ops, samples, || {
            hammer(threads, n_burst_per_thread, |_, _| {
                *lock.write() += 1;
            })
        });
        record("contended-burst/fcfs-exact", burst_ops, &m);
    }
    {
        let lock = Arc::new(FcfsRwLock::with_sampling(0u64, SamplePeriod::every(64)));
        let m = bench("contended-burst/fcfs-sampled", burst_ops, samples, || {
            hammer(threads, n_burst_per_thread, |_, _| {
                *lock.write() += 1;
            })
        });
        record("contended-burst/fcfs-sampled", burst_ops, &m);
    }

    // --- mixed 15/16-read workload ---
    let mixed_ops = threads * n_mixed_per_thread;
    {
        let lock = Arc::new(BaselineLock::default());
        let m = bench("mixed-15r1w/baseline", mixed_ops, samples, || {
            hammer(threads, n_mixed_per_thread, |_, i| {
                let exclusive = i % 16 == 0;
                let g = lock.acquire(exclusive);
                lock.release(exclusive, g);
            })
        });
        record("mixed-15r1w/baseline", mixed_ops, &m);
    }
    {
        let lock = Arc::new(FcfsRwLock::new(0u64));
        let m = bench("mixed-15r1w/fcfs-exact", mixed_ops, samples, || {
            hammer(threads, n_mixed_per_thread, |_, i| {
                if i % 16 == 0 {
                    *lock.write() += 1;
                } else {
                    std::hint::black_box(*lock.read());
                }
            })
        });
        record("mixed-15r1w/fcfs-exact", mixed_ops, &m);
    }
    {
        let lock = Arc::new(FcfsRwLock::with_sampling(0u64, SamplePeriod::every(64)));
        let m = bench("mixed-15r1w/fcfs-sampled", mixed_ops, samples, || {
            hammer(threads, n_mixed_per_thread, |_, i| {
                if i % 16 == 0 {
                    *lock.write() += 1;
                } else {
                    std::hint::black_box(*lock.read());
                }
            })
        });
        record("mixed-15r1w/fcfs-sampled", mixed_ops, &m);
    }

    // --- before/after table ---
    let ns_of = |name: &str| results.iter().find(|s| s.name == name).map(|s| s.ns_per_op);
    println!("\nbefore/after overhead (ns per acquire+release):");
    println!(
        "{:<20} {:>10} {:>12} {:>14} {:>9}",
        "scenario", "baseline", "fcfs-exact", "fcfs-sampled", "speedup"
    );
    let mut speedups = Vec::new();
    for scenario in [
        "uncontended-read",
        "uncontended-write",
        "contended-burst",
        "mixed-15r1w",
    ] {
        let base = ns_of(&format!("{scenario}/baseline")).unwrap_or(f64::NAN);
        let exact = ns_of(&format!("{scenario}/fcfs-exact")).unwrap_or(f64::NAN);
        let sampled = ns_of(&format!("{scenario}/fcfs-sampled")).unwrap_or(f64::NAN);
        let speedup = base / sampled;
        println!(
            "{:<20} {:>10.1} {:>12.1} {:>14.1} {:>8.2}x",
            scenario, base, exact, sampled, speedup
        );
        speedups.push((scenario, speedup));
    }

    // --- BENCH_lock.json ---
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"lock\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!("  \"threads_contended\": {threads},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_per_op\": {:.2}}}{}\n",
            s.name,
            s.ops,
            s.ns_per_op,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_vs_baseline\": {\n");
    for (i, (scenario, speedup)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.2}{}\n",
            scenario,
            speedup,
            if i + 1 == speedups.len() { "" } else { "," }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_lock.json", &json).expect("write BENCH_lock.json");
    println!("\nwrote BENCH_lock.json");

    // The fast path exists to make uncontended latching cheap; fail loudly
    // if the build being benchmarked has lost that property.
    for scenario in ["uncontended-read", "uncontended-write"] {
        let (_, speedup) = speedups
            .iter()
            .find(|(s, _)| s == &scenario)
            .expect("scenario present");
        if *speedup < 2.0 {
            eprintln!(
                "warning: {scenario} speedup {speedup:.2}x below the 2x target \
                 (noisy machine, debug build, or a regression)"
            );
        }
    }
}
