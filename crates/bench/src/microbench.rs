//! Minimal std-only microbenchmark runner used by the `benches/`
//! targets (plain `fn main()` harnesses, no external framework).
//!
//! Each measurement runs one warmup pass, then `samples` timed passes of
//! the closure, and reports the best and mean per-element time plus
//! throughput. Deliberately simple: these benches exist to show ranking
//! and order-of-magnitude behavior, not to chase nanosecond-stable
//! confidence intervals (the harness crate's saturation search does the
//! rigorous live measurement).

use std::time::{Duration, Instant};

/// One benchmark's samples, in nanoseconds per pass.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label, e.g. `btree/single-thread-mixed/b-link`.
    pub name: String,
    /// Elements (operations) processed per pass, for throughput.
    pub elements: u64,
    /// Wall-clock duration of each timed pass.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest pass.
    pub fn best(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Mean pass duration.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Throughput of the fastest pass, in elements per second.
    pub fn best_throughput(&self) -> f64 {
        let s = self.best().as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.elements as f64 / s
        }
    }

    /// One human-readable report line.
    pub fn report(&self) -> String {
        let per_op = self.best().as_secs_f64() * 1e9 / self.elements.max(1) as f64;
        format!(
            "{:<44} {:>10.1} ns/op {:>12.0} op/s (mean pass {:?}, {} samples)",
            self.name,
            per_op,
            self.best_throughput(),
            self.mean(),
            self.samples.len()
        )
    }
}

/// Runs `f` once for warmup and `samples` timed passes, printing the
/// report line immediately and returning the raw samples.
pub fn bench(name: &str, elements: u64, samples: usize, mut f: impl FnMut()) -> Measurement {
    f(); // warmup
    let mut m = Measurement {
        name: name.to_string(),
        elements,
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        m.samples.push(t0.elapsed());
    }
    println!("{}", m.report());
    m
}
