//! Seeded multi-thread property test: the drained trace agrees with the
//! engine's `OpCounters` window diffs (needs the `trace` feature; the
//! file is a no-op without it).
#![cfg(feature = "trace")]

use cbtree_btree::{ConcurrentBTree, Protocol};
use cbtree_obs::{opcode, trace, EventKind, MODE_EXCLUSIVE};
use std::collections::HashMap;
use std::sync::Barrier;

/// SplitMix64, the workspace's standard seeded generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const THREADS: usize = 4;
const OPS: usize = 2_000;
const KEYSPACE: u64 = 10_000;

#[test]
fn drained_event_counts_equal_opcounters_window_diffs() {
    for protocol in Protocol::ALL_WITH_RECOVERY {
        let _guard = trace::measurement_lock();
        trace::enable(true);

        let tree = ConcurrentBTree::new(protocol, 8);
        let mut seed = 0xC0FFEE ^ protocol.name().len() as u64;
        for _ in 0..1_000 {
            tree.insert(splitmix(&mut seed) % KEYSPACE, 1u64);
        }
        tree.txn_commit();

        // Open the measured window: snapshot counters, clear the trace.
        let before = tree.counters();
        let _ = trace::drain();

        let start = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let tree = &tree;
                let start = &start;
                s.spawn(move || {
                    let mut seed = 0x5EED_0000 + t as u64;
                    start.wait();
                    for i in 0..OPS {
                        let key = splitmix(&mut seed) % KEYSPACE;
                        match splitmix(&mut seed) % 4 {
                            0 => drop(tree.insert(key, t as u64)),
                            1 => drop(tree.remove(&key)),
                            2 => drop(tree.get(&key)),
                            _ => drop(tree.contains_key(&key)),
                        }
                        if i % 8 == 7 {
                            tree.txn_commit();
                        }
                    }
                    tree.txn_commit();
                });
            }
        });

        // Close the window (workers have exited: quiescent).
        let diff = tree.counters().since(&before);
        let t = trace::drain();
        trace::enable(false);
        assert_eq!(t.dropped, 0, "{protocol}: rings sized for the workload");

        let mut kind_counts: HashMap<EventKind, u64> = HashMap::new();
        let mut w_grants: HashMap<u16, u64> = HashMap::new();
        let mut r_grants_tree = 0u64;
        let mut op_begins = 0u64;
        for e in &t.events {
            *kind_counts.entry(e.kind).or_insert(0) += 1;
            match e.kind {
                EventKind::LatchGrant if e.level >= 1 => {
                    if e.arg & MODE_EXCLUSIVE != 0 {
                        *w_grants.entry(e.level).or_insert(0) += 1;
                    } else {
                        r_grants_tree += 1;
                    }
                }
                EventKind::OpBegin => {
                    assert!((e.arg as usize) < opcode::NAMES.len());
                    op_begins += 1;
                }
                _ => {}
            }
        }
        let count = |k: EventKind| kind_counts.get(&k).copied().unwrap_or(0);

        // Every counter with an exact event mirror must agree with the
        // window diff.
        assert_eq!(op_begins, diff.ops, "{protocol}: ops");
        assert_eq!(
            op_begins,
            count(EventKind::OpEnd),
            "{protocol}: ops complete"
        );
        assert_eq!(
            count(EventKind::Restart),
            diff.restarts,
            "{protocol}: restarts"
        );
        assert_eq!(count(EventKind::Chase), diff.chases, "{protocol}: chases");
        assert_eq!(
            count(EventKind::TxnCommit),
            diff.txn_commits,
            "{protocol}: commits"
        );
        assert_eq!(
            count(EventKind::TxnSpill),
            diff.txn_spills,
            "{protocol}: spills"
        );
        // Exclusive node-latch acquisitions all flow through the counted
        // engine path, per level (leaves = level 1 = index 0).
        for (level, grants) in &w_grants {
            assert_eq!(
                *grants,
                diff.w_latches[*level as usize - 1],
                "{protocol}: exclusive grants at level {level}"
            );
        }
        for (i, &c) in diff.w_latches.iter().enumerate() {
            if c > 0 {
                assert!(
                    w_grants.contains_key(&(i as u16 + 1)),
                    "{protocol}: counted W latches at level {} missing from trace",
                    i + 1
                );
            }
        }
        // Shared grants include a few engine-internal reads the counters
        // deliberately skip (root pointer revalidation, range walks), so
        // the trace can only see at least as many as the counters.
        let r_counted: u64 = diff.r_latches.iter().sum();
        assert!(
            r_grants_tree >= r_counted,
            "{protocol}: {r_grants_tree} shared grants < {r_counted} counted"
        );
        // Every granted latch was released by quiesce.
        assert_eq!(
            count(EventKind::LatchGrant),
            count(EventKind::LatchRelease),
            "{protocol}: grants equal releases at quiesce"
        );
        // Split windows pair up and the splits happened (the prefill
        // plus 8-cap nodes force some).
        assert_eq!(
            count(EventKind::SplitBegin),
            count(EventKind::SplitEnd),
            "{protocol}: split windows close"
        );
        tree.check().unwrap();
    }
}
