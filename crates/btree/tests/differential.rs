//! Differential tests: one seeded op stream applied sequentially to
//! every protocol — recovery variants included, committing after every
//! op (transaction size 1) — and to a `std::collections::BTreeMap`
//! oracle; every return value and the final contents must match
//! exactly. Under the `inject` feature all seven protocols additionally
//! run a schedule-perturbed concurrent workload, and OLC's restart
//! counters are sanity-checked in both regimes (zero single-threaded,
//! nonzero under contended injection).
//!
//! Both the oracle stream and the perturbed concurrent workload
//! interleave periodic `vacuum` passes, so slot recycling (a no-op on
//! the link protocols, real reclamation everywhere else) is exercised
//! against the oracle on every protocol.

use cbtree_btree::{ConcurrentBTree, Protocol};
use std::collections::BTreeMap;

/// Deterministic LCG (same multiplier the unit suites use).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn all_protocols_match_btreemap_oracle() {
    const OPS: usize = 6000;
    const KEY_SPACE: u64 = 700;

    for p in Protocol::ALL_WITH_RECOVERY {
        let tree = ConcurrentBTree::new(p, 5);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = Lcg(0xD1FF_E4E7);

        for i in 0..OPS {
            let r = rng.next();
            let key = rng.next() % KEY_SPACE;
            match r % 10 {
                // 40% inserts, 20% removes, 20% gets, 10% contains, 10% ranges.
                0..=3 => {
                    let val = r;
                    assert_eq!(tree.insert(key, val), oracle.insert(key, val), "{p} op {i}");
                }
                4..=5 => {
                    assert_eq!(tree.remove(&key), oracle.remove(&key), "{p} op {i}");
                }
                6..=7 => {
                    assert_eq!(tree.get(&key), oracle.get(&key).copied(), "{p} op {i}");
                }
                8 => {
                    assert_eq!(
                        tree.contains_key(&key),
                        oracle.contains_key(&key),
                        "{p} op {i}"
                    );
                }
                _ => {
                    let lo = key;
                    let hi = (key + 1 + rng.next() % 60).min(KEY_SPACE);
                    let got = tree.range(lo, hi);
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(got, want, "{p} range [{lo},{hi}) op {i}");
                }
            }
            // Transaction size 1: recovery variants commit after every
            // op; a no-op for everything else.
            tree.txn_commit();
            assert_eq!(tree.len(), oracle.len(), "{p} op {i}");
            // Interleave slot reclamation with the op stream (no-op on
            // the link protocols): recycled-slot reuse must never change
            // an answer.
            if i % 500 == 499 {
                tree.vacuum();
            }
        }

        // Final contents, checked key by key and via one full scan.
        tree.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        let full = tree.range(0, KEY_SPACE);
        let want: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(full, want, "{p} final contents");
        assert!(
            tree.counters().ops >= OPS as u64,
            "{p} telemetry counts ops"
        );
    }
}

/// OLC restart-counter sanity, quiet half: with no concurrent writers
/// every optimistic window validates on the first try, so a
/// single-threaded run performs validations but never restarts — and
/// never takes a reader latch.
#[test]
fn olc_restarts_zero_single_threaded() {
    let tree = ConcurrentBTree::new(Protocol::Olc, 5);
    for k in 0..2000u64 {
        tree.insert(k, k);
    }
    for k in 0..2000u64 {
        assert_eq!(tree.get(&k), Some(k));
        assert!(tree.contains_key(&k));
    }
    assert_eq!(tree.range(0, 2000).len(), 2000);
    let c = tree.counters();
    assert_eq!(c.restarts, 0, "no writers, no restarts");
    assert_eq!(c.v_restarts_writer + c.v_restarts_version, 0);
    assert!(c.v_validations > 0, "reads validate versions");
    assert_eq!(c.r_latch_total(), 0, "OLC readers never latch");
}

/// OLC restart-counter sanity, loud half: contended readers under
/// schedule-perturbation injection (which dilates the read-version →
/// validate window) must observe restarts, and every restart must be
/// attributed to exactly one cause.
#[cfg(feature = "inject")]
#[test]
fn olc_restarts_observed_under_contended_injection() {
    use cbtree_sync::inject::{self, InjectConfig};
    use std::sync::Arc;

    assert!(inject::enable(
        0x01C0_5EED,
        InjectConfig {
            yield_per_mille: 100,
            spin_per_mille: 400,
            max_spin: 3_000,
            split_window_spin: 4_000,
        }
    ));
    let tree = Arc::new(ConcurrentBTree::new(Protocol::Olc, 4));
    for k in 0..512u64 {
        tree.insert(k, 0);
    }
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                inject::register_thread(t);
                for i in 0..3_000u64 {
                    let k = (t * 1_000_003 + i * 7919) % 512;
                    tree.insert(k, i);
                    tree.remove(&((k + 97) % 512));
                }
            });
        }
        for t in 4..8u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                inject::register_thread(t);
                for i in 0..6_000u64 {
                    let k = (t + i * 31) % 512;
                    std::hint::black_box(tree.get(&k));
                }
            });
        }
    });
    inject::disable();
    let c = tree.counters();
    assert!(c.v_validations > 0);
    assert!(
        c.restarts > 0,
        "contended injected OLC reads must restart at least once"
    );
    assert_eq!(
        c.v_restarts_writer + c.v_restarts_version,
        c.restarts,
        "every OLC restart carries exactly one cause"
    );
    tree.check().unwrap();
}

/// All seven protocols survive a schedule-perturbed concurrent mixed
/// workload: disjoint stripes make the final contents exactly
/// predictable even though the interleavings are adversarial.
#[cfg(feature = "inject")]
#[test]
fn all_protocols_survive_perturbed_concurrency() {
    use cbtree_sync::inject;
    use std::sync::Arc;

    for (i, p) in Protocol::ALL_WITH_RECOVERY.into_iter().enumerate() {
        assert!(inject::enable(0xD1FF + i as u64, Default::default()));
        let tree = Arc::new(ConcurrentBTree::new(p, 4));
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        // Release the latches the recovery variants retained during
        // pre-population, or every worker below deadlocks on them.
        tree.txn_commit();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    inject::register_thread(t);
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some(), "{p} key {k}");
                        } else {
                            assert!(tree.insert(k, 1).is_none(), "{p} key {k}");
                        }
                        tree.txn_commit(); // transaction size 1
                                           // Recycle emptied leaves under the other
                                           // workers' feet (no-op on the link protocols).
                        if k % 256 == 0 {
                            tree.vacuum();
                        }
                    }
                });
            }
        });
        inject::disable();
        assert_eq!(tree.len(), 2000, "{p}");
        tree.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "{p} key {k}");
        }
    }
}
