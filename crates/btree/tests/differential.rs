//! Differential test: one seeded op stream applied sequentially to every
//! protocol — recovery variants included, committing after every op
//! (transaction size 1) — and to a `std::collections::BTreeMap` oracle.
//! Every return value and the final contents must match exactly.

use cbtree_btree::{ConcurrentBTree, Protocol};
use std::collections::BTreeMap;

/// Deterministic LCG (same multiplier the unit suites use).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn all_protocols_match_btreemap_oracle() {
    const OPS: usize = 6000;
    const KEY_SPACE: u64 = 700;

    for p in Protocol::ALL_WITH_RECOVERY {
        let tree = ConcurrentBTree::new(p, 5);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = Lcg(0xD1FF_E4E7);

        for i in 0..OPS {
            let r = rng.next();
            let key = rng.next() % KEY_SPACE;
            match r % 10 {
                // 40% inserts, 20% removes, 20% gets, 10% contains, 10% ranges.
                0..=3 => {
                    let val = r;
                    assert_eq!(tree.insert(key, val), oracle.insert(key, val), "{p} op {i}");
                }
                4..=5 => {
                    assert_eq!(tree.remove(&key), oracle.remove(&key), "{p} op {i}");
                }
                6..=7 => {
                    assert_eq!(tree.get(&key), oracle.get(&key).copied(), "{p} op {i}");
                }
                8 => {
                    assert_eq!(
                        tree.contains_key(&key),
                        oracle.contains_key(&key),
                        "{p} op {i}"
                    );
                }
                _ => {
                    let lo = key;
                    let hi = (key + 1 + rng.next() % 60).min(KEY_SPACE);
                    let got = tree.range(lo, hi);
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(got, want, "{p} range [{lo},{hi}) op {i}");
                }
            }
            // Transaction size 1: recovery variants commit after every
            // op; a no-op for everything else.
            tree.txn_commit();
            assert_eq!(tree.len(), oracle.len(), "{p} op {i}");
        }

        // Final contents, checked key by key and via one full scan.
        tree.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        let full = tree.range(0, KEY_SPACE);
        let want: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(full, want, "{p} final contents");
        assert!(
            tree.counters().ops >= OPS as u64,
            "{p} telemetry counts ops"
        );
    }
}
