//! Multi-threaded stress tests: linearizability-style conservation checks
//! under genuinely concurrent mixed workloads, for all three protocols.

use cbtree_btree::{ConcurrentBTree, Protocol};
use cbtree_workload::{OpStream, Operation, OpsConfig};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Runs a random mixed workload from many threads and checks that the
/// tree's length matches the net number of successful inserts minus
/// successful removes, and that the structure is valid afterwards.
fn conservation_under_mix(protocol: Protocol, threads: u64, per_thread: usize) {
    let tree = Arc::new(ConcurrentBTree::<u64>::new(protocol, 8));
    let net = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = Arc::clone(&tree);
            let net = Arc::clone(&net);
            s.spawn(move || {
                let mut stream = OpStream::new(OpsConfig::paper(10_000), 1000 + t);
                for _ in 0..per_thread {
                    match stream.next_op() {
                        Operation::Search(k) => {
                            let _ = tree.get(&k);
                        }
                        Operation::Insert(k) => {
                            if tree.insert(k, k).is_none() {
                                net.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Operation::Delete(k) => {
                            if tree.remove(&k).is_some() {
                                net.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let expected = net.load(Ordering::Relaxed);
    assert!(expected >= 0, "net count went negative: {expected}");
    assert_eq!(
        tree.len() as i64,
        expected,
        "{protocol:?}: length conservation violated"
    );
    tree.check()
        .unwrap_or_else(|e| panic!("{protocol:?}: invariant violated: {e}"));
}

#[test]
fn lock_coupling_conserves_under_concurrency() {
    conservation_under_mix(Protocol::LockCoupling, 8, 4_000);
}

#[test]
fn optimistic_conserves_under_concurrency() {
    conservation_under_mix(Protocol::OptimisticDescent, 8, 4_000);
}

#[test]
fn blink_conserves_under_concurrency() {
    conservation_under_mix(Protocol::BLink, 8, 4_000);
}

/// Writers insert disjoint stripes while a reader repeatedly verifies a
/// stable prefix; pre-existing keys must never disappear mid-run.
fn stable_prefix_never_lost(protocol: Protocol) {
    let tree = Arc::new(ConcurrentBTree::<u64>::new(protocol, 5));
    for k in 0..2_000u64 {
        tree.insert(k * 10, k);
    }
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    // Keys ≡ t+1 (mod 10): never collide with the ×10 prefix.
                    tree.insert(i * 10 + t + 1, i);
                }
            });
        }
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..5 {
                    for k in 0..2_000u64 {
                        assert_eq!(
                            tree.get(&(k * 10)),
                            Some(k),
                            "round {round}: stable key {} lost",
                            k * 10
                        );
                    }
                }
            });
        }
    });
    assert_eq!(tree.len(), 2_000 + 4 * 10_000);
    tree.check().unwrap();
}

#[test]
fn lock_coupling_stable_prefix() {
    stable_prefix_never_lost(Protocol::LockCoupling);
}

#[test]
fn optimistic_stable_prefix() {
    stable_prefix_never_lost(Protocol::OptimisticDescent);
}

#[test]
fn blink_stable_prefix() {
    stable_prefix_never_lost(Protocol::BLink);
}

/// Insert/remove churn on a *small hot range* maximizes split/latch
/// contention; afterwards the surviving key set must match a sequential
/// replay per thread-stripe.
fn hot_range_churn(protocol: Protocol) {
    let tree = Arc::new(ConcurrentBTree::<u64>::new(protocol, 4));
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                // Each thread owns keys ≡ t (mod 8): insert, remove, reinsert.
                for i in 0..2_000u64 {
                    let k = i * 8 + t;
                    assert!(tree.insert(k, t).is_none());
                    assert_eq!(tree.remove(&k), Some(t));
                    assert!(tree.insert(k, t + 100).is_none());
                }
            });
        }
    });
    assert_eq!(tree.len(), 16_000);
    for t in 0..8u64 {
        for i in (0..2_000u64).step_by(131) {
            assert_eq!(tree.get(&(i * 8 + t)), Some(t + 100));
        }
    }
    tree.check().unwrap();
}

#[test]
fn lock_coupling_hot_range_churn() {
    hot_range_churn(Protocol::LockCoupling);
}

#[test]
fn optimistic_hot_range_churn() {
    hot_range_churn(Protocol::OptimisticDescent);
}

#[test]
fn blink_hot_range_churn() {
    hot_range_churn(Protocol::BLink);
}

/// The blink tree's crossing counter should record activity under
/// contention yet stay far below one crossing per operation (Figure 9's
/// qualitative claim, on real threads).
#[test]
fn blink_crossings_are_rare_on_real_threads() {
    let tree = Arc::new(cbtree_btree::BLinkTree::<()>::new(4));
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    tree.insert(i * 8 + t, ());
                }
            });
        }
    });
    let per_op = tree.crossing_count() as f64 / 80_000.0;
    assert!(per_op < 0.2, "crossings per op = {per_op}");
    tree.check().unwrap();
}
