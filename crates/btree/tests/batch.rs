//! Batched-execution tests: sorted-batch descent must be
//! indistinguishable from singleton execution (same results, same final
//! contents) while paying visibly fewer latch acquisitions, and batch
//! boundaries must never reorder conflicting same-key operations.

use cbtree_btree::{BatchOp, ConcurrentBTree, ConcurrentMap, Protocol};
use std::collections::BTreeMap;

/// Deterministic LCG (same multiplier the unit suites use).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn seeded_ops(seed: u64, n: usize, key_space: u64) -> Vec<BatchOp<u64>> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|_| {
            let r = rng.next();
            let key = rng.next() % key_space;
            match r % 10 {
                0..=4 => BatchOp::Insert(key, r),
                5..=6 => BatchOp::Remove(key),
                _ => BatchOp::Get(key),
            }
        })
        .collect()
}

/// The same seeded op stream, executed batched on one tree and
/// singleton on another, must return identical per-op results and leave
/// identical final contents — on every protocol, across many batch
/// sizes (including sizes that straddle splits).
#[test]
fn batched_matches_singleton_differentially() {
    const KEY_SPACE: u64 = 900;
    for p in Protocol::ALL_WITH_RECOVERY {
        let batched = ConcurrentBTree::new(p, 5);
        let single = ConcurrentBTree::new(p, 5);
        let mut stream = seeded_ops(0xBA7C_4ED0 ^ p.name().len() as u64, 6000, KEY_SPACE);
        let mut batch_no = 0usize;
        while !stream.is_empty() {
            // Vary the batch size: 1, 2, 4, ..., 64, 1, 2, ...
            let take = (1usize << (batch_no % 7)).min(stream.len());
            batch_no += 1;
            let chunk: Vec<BatchOp<u64>> = stream.drain(..take).collect();
            let singleton_results: Vec<Option<u64>> = chunk
                .iter()
                .map(|op| match *op {
                    BatchOp::Get(k) => single.get(&k),
                    BatchOp::Insert(k, v) => single.insert(k, v),
                    BatchOp::Remove(k) => single.remove(&k),
                })
                .collect();
            let out = batched.execute_batch(chunk);
            assert_eq!(out.results, singleton_results, "{p} batch {batch_no}");
            assert_eq!(out.summary.ops, take as u64, "{p}");
            assert!(out.summary.descents >= 1, "{p}");
            assert!(
                out.summary.leaf_reuses + out.summary.descents >= out.summary.ops,
                "{p}: every op is a reuse or follows a descent"
            );
            // Recovery variants retain fallback-insert latches to commit.
            batched.txn_commit();
            single.txn_commit();
            if batch_no.is_multiple_of(20) {
                batched.vacuum();
                single.vacuum();
            }
        }
        batched.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        single.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        assert_eq!(
            batched.range(0, KEY_SPACE),
            single.range(0, KEY_SPACE),
            "{p} final contents"
        );
        assert_eq!(batched.len(), single.len(), "{p}");
    }
}

/// Conflicting same-key operations inside one batch keep their
/// submission order (the sort is stable), so the batch behaves exactly
/// like the singleton sequence.
#[test]
fn same_key_ops_keep_submission_order() {
    let tree = ConcurrentBTree::new(Protocol::BLink, 6);
    tree.insert(50, 0u64);
    let out = tree.execute_batch(vec![
        BatchOp::Insert(50, 1),
        BatchOp::Remove(50),
        BatchOp::Insert(50, 2),
        BatchOp::Get(50),
        BatchOp::Remove(7),
    ]);
    assert_eq!(
        out.results,
        vec![Some(0), Some(1), None, Some(2), None],
        "results arrive in submission order"
    );
    assert_eq!(tree.get(&50), Some(2), "last same-key write wins");
    assert_eq!(tree.len(), 1);
}

/// A dense sorted batch over a prefilled tree reuses held leaves for
/// almost every operation and pays measurably fewer latches per op than
/// the same work executed singleton.
#[test]
fn dense_batch_amortizes_descents_and_latches() {
    let batched = ConcurrentBTree::new(Protocol::LockCoupling, 8);
    let single = ConcurrentBTree::new(Protocol::LockCoupling, 8);
    for k in 0..4000u64 {
        batched.insert(k, k);
        single.insert(k, k);
    }
    let before_b = batched.counters();
    let before_s = single.counters();

    let ops: Vec<BatchOp<u64>> = (1000..1256u64).map(BatchOp::Get).collect();
    let out = batched.execute_batch(ops);
    for (i, r) in out.results.iter().enumerate() {
        assert_eq!(*r, Some(1000 + i as u64));
    }
    assert!(
        out.summary.leaf_reuses > out.summary.descents,
        "dense keys mostly reuse the held leaf: {:?}",
        out.summary
    );
    assert!(out.summary.right_hops > 0, "consecutive leaves hop right");

    for k in 1000..1256u64 {
        assert_eq!(single.get(&k), Some(k));
    }
    let db = batched.counters().since(&before_b);
    let ds = single.counters().since(&before_s);
    assert_eq!(db.ops, ds.ops, "both executed the same op count");
    assert!(
        db.latches_per_op() < ds.latches_per_op() / 2.0,
        "batched {} vs singleton {} latches/op",
        db.latches_per_op(),
        ds.latches_per_op()
    );
}

/// Inserts that overflow the held leaf fall back to the strategy's
/// native split path; accounting records them and contents stay exact.
#[test]
fn overflowing_inserts_fall_back_to_native_splits() {
    for p in Protocol::ALL_WITH_RECOVERY {
        let tree = ConcurrentBTree::new(p, 4);
        let ops: Vec<BatchOp<u64>> = (0..500u64).map(|k| BatchOp::Insert(k, k * 3)).collect();
        let out = tree.execute_batch(ops);
        tree.txn_commit();
        assert!(
            out.summary.fallback_inserts > 0,
            "{p}: cap-4 leaves must overflow"
        );
        assert!(out.results.iter().all(|r| r.is_none()), "{p}: fresh keys");
        assert_eq!(tree.len(), 500, "{p}");
        tree.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        for k in 0..500u64 {
            assert_eq!(tree.get(&k), Some(k * 3), "{p} key {k}");
        }
    }
}

/// The empty batch is a no-op with empty accounting.
#[test]
fn empty_batch_is_a_noop() {
    let tree = ConcurrentBTree::<u64>::new(Protocol::Olc, 8);
    let before = tree.counters();
    let out = tree.execute_batch(Vec::new());
    assert!(out.results.is_empty());
    assert_eq!(out.summary, Default::default());
    assert_eq!(tree.counters().since(&before).ops, 0);
}

/// The `ConcurrentMap` default (singleton loop) agrees with the
/// engine's sorted-batch override — exercised through a test double
/// that only implements the required methods.
#[test]
fn trait_default_executes_singleton_semantics() {
    // ConcurrentBTree dispatches through `Box<dyn ConcurrentMap>`, so
    // calling via the trait hits the DescentTree override.
    let tree: &dyn ConcurrentMap<u64> = &ConcurrentBTree::new(Protocol::OptimisticDescent, 6);
    let out = tree.execute_batch(vec![
        BatchOp::Insert(1, 10),
        BatchOp::Insert(2, 20),
        BatchOp::Get(1),
        BatchOp::Remove(3),
    ]);
    assert_eq!(out.results, vec![None, None, Some(10), None]);
    assert_eq!(out.summary.ops, 4);
}

/// Concurrent batch workers interleaved with singleton mutators and
/// vacuum passes: disjoint stripes keep the final contents exactly
/// predictable; structural invariants must hold throughout.
#[test]
fn concurrent_batches_and_singletons_agree() {
    use std::sync::Arc;
    for p in [Protocol::LockCoupling, Protocol::BLink, Protocol::Olc] {
        let tree = Arc::new(ConcurrentBTree::new(p, 4));
        for k in (0..8000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            // Two batch workers, each owning the first 1984 keys of a
            // 4000-key stripe (62 chunks of 32).
            for t in 0..2u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    let base = t * 4000;
                    for chunk in 0..62u64 {
                        let lo = base + chunk * 32;
                        let ops: Vec<BatchOp<u64>> = (lo..lo + 32)
                            .map(|k| {
                                if k % 2 == 0 {
                                    BatchOp::Remove(k)
                                } else {
                                    BatchOp::Insert(k, 1)
                                }
                            })
                            .collect();
                        let out = tree.execute_batch(ops);
                        assert_eq!(out.summary.ops, 32, "{p}");
                        if chunk % 16 == 0 {
                            tree.vacuum();
                        }
                    }
                });
            }
            // Two singleton mutators on the rest of each stripe.
            for t in 0..2u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    let lo = t * 4000 + 62 * 32; // keys the batch workers never touch
                    for k in lo..(t + 1) * 4000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some(), "{p} key {k}");
                        } else {
                            assert!(tree.insert(k, 1).is_none(), "{p} key {k}");
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 4000, "{p}");
        tree.check().unwrap_or_else(|e| panic!("{p}: {e}"));
        for k in 0..8000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "{p} key {k}");
        }
    }
}

/// Batched execution against a `BTreeMap` oracle, batch by batch: the
/// canonical differential check the service layer's correctness rides
/// on.
#[test]
fn batched_matches_btreemap_oracle() {
    const KEY_SPACE: u64 = 500;
    let tree = ConcurrentBTree::new(Protocol::BLink, 5);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut stream = seeded_ops(0x04AC_1E5E, 4000, KEY_SPACE);
    while !stream.is_empty() {
        let take = 24.min(stream.len());
        let chunk: Vec<BatchOp<u64>> = stream.drain(..take).collect();
        let want: Vec<Option<u64>> = chunk
            .iter()
            .map(|op| match *op {
                BatchOp::Get(k) => oracle.get(&k).copied(),
                BatchOp::Insert(k, v) => oracle.insert(k, v),
                BatchOp::Remove(k) => oracle.remove(&k),
            })
            .collect();
        assert_eq!(tree.execute_batch(chunk).results, want);
    }
    tree.check().unwrap();
    let got = tree.range(0, KEY_SPACE);
    let want: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want);
}
