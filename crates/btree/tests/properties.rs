//! Property-based tests: every protocol must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and
//! structural invariants must hold at every quiescent point.

use cbtree_btree::{ConcurrentBTree, Protocol};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Contains(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Get),
        (0..key_space).prop_map(Op::Contains),
    ]
}

fn check_against_model(protocol: Protocol, cap: usize, ops: &[Op]) -> Result<(), TestCaseError> {
    let tree = ConcurrentBTree::new(protocol, cap);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                prop_assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {}", k);
            }
            Op::Remove(k) => {
                prop_assert_eq!(tree.remove(&k), model.remove(&k), "remove {}", k);
            }
            Op::Get(k) => {
                prop_assert_eq!(tree.get(&k), model.get(&k).copied(), "get {}", k);
            }
            Op::Contains(k) => {
                prop_assert_eq!(
                    tree.contains_key(&k),
                    model.contains_key(&k),
                    "contains {}",
                    k
                );
            }
        }
        prop_assert_eq!(tree.len(), model.len());
    }
    tree.check()
        .map_err(|e| TestCaseError::fail(format!("invariant violated: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lock_coupling_matches_model(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        cap in 3usize..16,
    ) {
        check_against_model(Protocol::LockCoupling, cap, &ops)?;
    }

    #[test]
    fn optimistic_matches_model(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        cap in 3usize..16,
    ) {
        check_against_model(Protocol::OptimisticDescent, cap, &ops)?;
    }

    #[test]
    fn blink_matches_model(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        cap in 3usize..16,
    ) {
        check_against_model(Protocol::BLink, cap, &ops)?;
    }

    #[test]
    fn two_phase_matches_model(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        cap in 3usize..16,
    ) {
        check_against_model(Protocol::TwoPhase, cap, &ops)?;
    }

    /// Dense ascending inserts are the classic splitting worst case;
    /// every protocol must keep the tree valid and complete.
    #[test]
    fn ascending_inserts_stay_valid(n in 1usize..800, cap in 3usize..10) {
        for p in Protocol::ALL_WITH_BASELINE {
            let tree = ConcurrentBTree::new(p, cap);
            for k in 0..n as u64 {
                prop_assert!(tree.insert(k, k).is_none());
            }
            prop_assert_eq!(tree.len(), n);
            for k in 0..n as u64 {
                prop_assert!(tree.contains_key(&k));
            }
            tree.check().map_err(TestCaseError::fail)?;
        }
    }

    /// Range scans agree with the model's range on a quiescent tree,
    /// for every protocol.
    #[test]
    fn range_matches_model(
        entries in prop::collection::btree_map(0u64..1000, any::<u64>(), 0..300),
        lo in 0u64..1000,
        width in 0u64..400,
        cap in 3usize..12,
    ) {
        let hi = lo.saturating_add(width);
        let expect: Vec<(u64, u64)> =
            entries.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        for p in Protocol::ALL_WITH_BASELINE {
            let tree = ConcurrentBTree::new(p, cap);
            for (&k, &v) in &entries {
                tree.insert(k, v);
            }
            let got = tree.range(lo, hi);
            prop_assert_eq!(&got, &expect, "{:?}", p);
        }
    }
}
