//! Slab-arena node storage with generation-checked handles.
//!
//! Nodes no longer live in per-node `Arc<RwLock<Node>>` heap cells:
//! every tree owns an [`Arena`], a segmented slab of preallocated
//! [`Slot`]s, and nodes are addressed by a compact [`NodeId`] — a `u32`
//! slot index paired with the slot's **generation** at handle-creation
//! time. Child pointers inside nodes are bare `NodeId`s (8 bytes, no
//! refcount traffic); the [`NodeRef`] handle that code outside a node
//! passes around pairs an id with an `Arc` of the arena, so storage
//! lives exactly as long as anything can reach it.
//!
//! # Layout
//!
//! The slab is a spine of up to [`SEG_COUNT`] segments; segment `k`
//! holds `BASE << k` slots in one contiguous allocation and is created
//! at most once (`OnceLock`), so **slot addresses are stable forever**
//! — growth never moves or reallocates existing slots, which is the
//! invariant every latch guard and optimistic read window relies on.
//! Slot `idx` lives in segment `⌊log₂(idx/BASE + 1)⌋`; resolving a
//! handle is pure bit math plus one bounds-checked load, no lock.
//!
//! # Free list and generations
//!
//! Retired slots (vacuumed empty leaves — see
//! [`DescentTree::vacuum`](crate::descent::DescentTree::vacuum)) go on
//! a free list and are recycled by later splits. Recycling is what the
//! old `Arc` representation never did — "nodes are never unlinked" was
//! the load-bearing safety argument for latch-free readers — so the
//! slab replaces that argument with **generation validation**: retiring
//! a slot bumps its generation *while the retiring writer still holds
//! the slot's exclusive latch*, and every reader that reached a slot
//! through an unlatched window re-checks `slot.gen == id.gen` after its
//! version validation. A stale handle therefore convicts itself instead
//! of silently routing into whatever node now occupies the slot:
//!
//! * an optimistic reader's version validation proves no exclusive
//!   section completed inside its read window, and the generation is
//!   only ever bumped inside an exclusive section — so a matching
//!   generation *after* a successful validation proves the slot held
//!   the handle's node for the entire window (checking the generation
//!   *before* the window instead would race with a retire-and-recycle
//!   between the check and the version snapshot);
//! * a latched reader simply checks the generation after acquiring the
//!   latch (the bump happens before the retiring latch is released, so
//!   acquisition order decides).
//!
//! Slots keep their lock — and the lock's statistics and trace tag —
//! across recycling; the lock's version counter keeps advancing, which
//! is exactly what makes a recycled slot's windows fail closed. The
//! retire/install writes are themselves exclusive sections of the
//! slot's own latch, so they are visible to the version machinery like
//! any other write.

use crate::node::Node;
use cbtree_sync::{FcfsRwLock as RwLock, SamplePeriod, UnownedReadGuard, UnownedWriteGuard};
use std::fmt;
use std::ops::{Deref, DerefMut, Index};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Hard upper bound on a tree's node capacity (max keys per node): the
/// inline key/child arrays are sized for it, so every node of every
/// tree fits without heap-allocated key buffers. Real configurations
/// use 4–64; the bound leaves ample headroom.
pub const MAX_CAP: usize = 128;

/// Inline key-array length: a node transiently holds `cap + 1` keys
/// (just before its split), never more.
pub const MAX_KEYS: usize = MAX_CAP + 1;

/// Inline child-array length: an internal node transiently holds
/// `cap + 2` children (one more than its transient key count).
pub const MAX_KIDS: usize = MAX_CAP + 2;

/// Slots in the first slab segment; segment `k` holds `BASE << k`.
const BASE: usize = 64;

/// Spine length: segments 0..SEG_COUNT cover the whole `u32` index
/// space (the sum of `BASE << k` exceeds `u32::MAX` at k = 25).
const SEG_COUNT: usize = 26;

// ---------------------------------------------------------------------
// InlineVec: fixed-capacity vector of plain-old-data elements.
// ---------------------------------------------------------------------

/// A fixed-capacity vector stored entirely inline, for `Copy + Default`
/// element types (keys, child ids). No heap allocation ever, so a
/// node's routing data lives in the same cache lines as its header —
/// and, unlike `Vec`, there is no (pointer, len, capacity) triple for
/// an optimistic reader to tear apart: a torn `len` is clamped to `N`
/// by every accessor, and every slot of the buffer is always an
/// initialized `T` (stale garbage at worst), so unlatched windows read
/// wrong-but-valid values that failed validation then discards.
///
/// # Panics
///
/// Growth past `N` panics: the descent engine splits any node before
/// it can exceed its transient maximum, so an overflow here is a logic
/// error (and silently dropping or reallocating would be worse).
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: usize,
    buf: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// An inline copy of `items`.
    ///
    /// # Panics
    /// Panics when `items.len() > N`.
    pub fn from_slice(items: &[T]) -> Self {
        let mut v = InlineVec::new();
        for &x in items {
            v.push(x);
        }
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    pub fn push(&mut self, x: T) {
        assert!(self.len < N, "inline buffer overflow ({N} elements)");
        self.buf[self.len] = x;
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.buf[self.len])
    }

    /// Inserts `x` at `i`, shifting the tail right.
    pub fn insert(&mut self, i: usize, x: T) {
        assert!(i <= self.len, "insert index {i} out of bounds");
        assert!(self.len < N, "inline buffer overflow ({N} elements)");
        self.buf.copy_within(i..self.len, i + 1);
        self.buf[i] = x;
        self.len += 1;
    }

    /// Removes and returns the element at `i`, shifting the tail left.
    pub fn remove(&mut self, i: usize) -> T {
        assert!(i < self.len, "remove index {i} out of bounds");
        let x = self.buf[i];
        self.buf.copy_within(i + 1..self.len, i);
        self.len -= 1;
        x
    }

    /// Splits off and returns the tail `[at, len)`, leaving `[0, at)`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len, "split index {at} out of bounds");
        let tail = InlineVec::from_slice(&self.buf[at..self.len]);
        self.len = at;
        tail
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // The clamp is what makes torn optimistic reads of `len` safe:
        // a wrong length yields a wrong (discarded) slice, never an
        // out-of-bounds access.
        &self.buf[..self.len.min(N)]
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        let len = self.len.min(N);
        &mut self.buf[..len]
    }
}

impl<T: Copy + Default, I: std::slice::SliceIndex<[T]>, const N: usize> Index<I>
    for InlineVec<T, N>
{
    type Output = I::Output;
    fn index(&self, i: I) -> &I::Output {
        &(**self)[i]
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

// ---------------------------------------------------------------------
// NodeId: slot index + generation.
// ---------------------------------------------------------------------

/// A generation-checked node handle: slot index plus the slot's
/// generation when the handle was created. Packs into a `u64` (the
/// tree's root word and the trace pillar's `split_node` identifier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Slab slot index.
    pub idx: u32,
    /// Slot generation the handle was created under; a mismatch with
    /// the slot's current generation means the slot was recycled and
    /// this handle is stale.
    pub gen: u32,
}

impl NodeId {
    /// Packs the id into one word (`idx` high, `gen` low).
    pub fn to_bits(self) -> u64 {
        (u64::from(self.idx) << 32) | u64::from(self.gen)
    }

    /// Unpacks [`NodeId::to_bits`].
    pub fn from_bits(bits: u64) -> Self {
        NodeId {
            idx: (bits >> 32) as u32,
            gen: bits as u32,
        }
    }
}

// ---------------------------------------------------------------------
// The arena.
// ---------------------------------------------------------------------

/// One slab slot: a generation counter next to the latch-wrapped node.
struct Slot<V> {
    /// Bumped once per retire, always inside the slot latch's exclusive
    /// section (see the module docs for why that placement is load-
    /// bearing).
    gen: AtomicU32,
    lock: RwLock<Node<V>>,
}

struct ArenaInner<V> {
    /// Segment `k` holds `BASE << k` slots; created at most once, so
    /// slot addresses are stable for the arena's lifetime.
    spine: Vec<OnceLock<Box<[Slot<V>]>>>,
    /// Recycled slot indices, consumed LIFO (warmest slot first).
    free: Mutex<Vec<u32>>,
    /// Number of initialized segments (guards segment creation).
    segments: Mutex<usize>,
    /// Slots ever handed out (diagnostics).
    allocated: AtomicU64,
    /// Slots retired for recycling (diagnostics; tests assert on it).
    recycled: AtomicU64,
    sample: SamplePeriod,
}

/// A shared handle to a tree's node slab. Cloning is an `Arc` clone;
/// all storage is dropped when the last clone (tree, guard, or
/// [`NodeRef`]) goes away.
pub struct Arena<V> {
    inner: Arc<ArenaInner<V>>,
}

impl<V> Clone for Arena<V> {
    fn clone(&self) -> Self {
        Arena {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> fmt::Debug for Arena<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("allocated", &self.inner.allocated.load(Ordering::Relaxed))
            .field("recycled", &self.inner.recycled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Segment and in-segment offset of a global slot index.
fn locate(idx: u32) -> (usize, usize) {
    let chunk = idx as usize / BASE + 1;
    let k = usize::BITS as usize - 1 - chunk.leading_zeros() as usize;
    let seg_base = BASE * ((1 << k) - 1);
    (k, idx as usize - seg_base)
}

impl<V> Arena<V> {
    /// An empty arena whose slot locks time one in `sample.period()`
    /// acquisitions.
    pub fn new(sample: SamplePeriod) -> Self {
        Arena {
            inner: Arc::new(ArenaInner {
                spine: (0..SEG_COUNT).map(|_| OnceLock::new()).collect(),
                free: Mutex::new(Vec::new()),
                segments: Mutex::new(0),
                allocated: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                sample,
            }),
        }
    }

    fn slot(&self, idx: u32) -> &Slot<V> {
        let (k, off) = locate(idx);
        &self.inner.spine[k]
            .get()
            .expect("slot index within an initialized segment")[off]
    }

    /// Installs `node` into a fresh or recycled slot and returns its
    /// handle. The install is an exclusive section of the slot's latch,
    /// so any straggling stale reader of a recycled slot sees a version
    /// bump (and already sees a generation mismatch).
    pub fn alloc(&self, node: Node<V>) -> NodeRef<V> {
        let idx = loop {
            if let Some(idx) = self
                .inner
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop()
            {
                break idx;
            }
            self.grow();
        };
        let slot = self.slot(idx);
        let gen = slot.gen.load(Ordering::Acquire);
        let level = node.level.min(u16::MAX as usize) as u16;
        *slot.lock.write() = node;
        slot.lock.set_trace_tag(level);
        self.inner.allocated.fetch_add(1, Ordering::Relaxed);
        self.at(NodeId { idx, gen })
    }

    /// Initializes the next segment and feeds its slots to the free
    /// list (no-op when another thread grew first).
    fn grow(&self) {
        let mut segments = self
            .inner
            .segments
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        {
            let free = self
                .inner
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !free.is_empty() {
                return; // someone else grew (or freed) while we waited
            }
        }
        let k = *segments;
        assert!(k < SEG_COUNT, "arena exhausted the u32 handle space");
        let len = BASE << k;
        let seg_base = BASE * ((1 << k) - 1);
        let seg: Box<[Slot<V>]> = (0..len)
            .map(|_| Slot {
                gen: AtomicU32::new(0),
                lock: RwLock::with_sampling(Node::new_leaf(), self.inner.sample),
            })
            .collect();
        self.inner.spine[k].set(seg).ok().expect("segment set once");
        *segments = k + 1;
        let mut free = self
            .inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Reversed so allocation consumes the segment low-index first.
        free.extend((seg_base as u32..(seg_base + len) as u32).rev());
    }

    /// Retires the node a caller holds exclusively: bumps the slot
    /// generation (convicting every outstanding handle) and resets the
    /// node to a placeholder, all inside the caller's exclusive
    /// section. The caller must drop its guard and then call
    /// [`Arena::recycle`] to return the slot to the free list.
    pub fn retire(&self, guard: &mut WriteGuard<V>) {
        let slot = self.slot(guard.id.idx);
        debug_assert_eq!(
            slot.gen.load(Ordering::Relaxed),
            guard.id.gen,
            "retiring through a stale handle"
        );
        slot.gen
            .store(guard.id.gen.wrapping_add(1), Ordering::Release);
        **guard = Node::new_leaf();
        self.inner.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a retired slot to the free list (after the retiring
    /// guard dropped; the slot may be handed out again immediately).
    pub fn recycle(&self, id: NodeId) {
        self.inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(id.idx);
    }

    /// A handle for `id` in this arena (no liveness check — a stale id
    /// yields a handle whose [`NodeRef::stale`] is true).
    pub fn at(&self, id: NodeId) -> NodeRef<V> {
        NodeRef {
            arena: self.clone(),
            id,
        }
    }

    /// Total slots ever handed out.
    pub fn allocated(&self) -> u64 {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// Total slots retired for recycling.
    pub fn recycled(&self) -> u64 {
        self.inner.recycled.load(Ordering::Relaxed)
    }

    /// Current free-list length (test/diagnostic use).
    pub fn free_slots(&self) -> usize {
        self.inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

// ---------------------------------------------------------------------
// NodeRef: arena + id, the unit every descent passes around.
// ---------------------------------------------------------------------

/// A node handle: an [`Arena`] plus a [`NodeId`]. Dereferences to the
/// slot's latch, so all of `read()`, `write()`, `version()`,
/// `validate()`, `read_optimistic()` and `stats()` are available
/// directly; the `*_guard` methods additionally return owned guards
/// that keep the arena alive (the latch-crabbing shape).
pub struct NodeRef<V> {
    arena: Arena<V>,
    id: NodeId,
}

impl<V> Clone for NodeRef<V> {
    fn clone(&self) -> Self {
        NodeRef {
            arena: self.arena.clone(),
            id: self.id,
        }
    }
}

impl<V> fmt::Debug for NodeRef<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeRef").field("id", &self.id).finish()
    }
}

impl<V> Deref for NodeRef<V> {
    type Target = RwLock<Node<V>>;
    fn deref(&self) -> &RwLock<Node<V>> {
        &self.arena.slot(self.id.idx).lock
    }
}

impl<V> NodeRef<V> {
    /// This handle's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The arena this handle points into.
    pub fn arena(&self) -> &Arena<V> {
        &self.arena
    }

    /// A sibling handle into the same arena.
    pub fn at(&self, id: NodeId) -> NodeRef<V> {
        self.arena.at(id)
    }

    /// Rebinds this handle to `id` in place — the hot descent step.
    /// Unlike [`NodeRef::at`], which clones the arena handle (two
    /// refcount writes on a cache line shared by every thread), this is
    /// plain field assignment, so a descent that steps with `goto`
    /// performs no refcount traffic at all.
    pub fn goto(&mut self, id: NodeId) {
        self.id = id;
    }

    /// Whether two handles name the same slot *and* generation.
    pub fn same_node(a: &NodeRef<V>, b: &NodeRef<V>) -> bool {
        a.id == b.id
    }

    /// Whether the slot was recycled since this handle was created. A
    /// stale handle's node content belongs to someone else (or to the
    /// placeholder); every path that reached a node through an
    /// unlatched window must check this **after** latching or after a
    /// successful version validation — see the module docs for why the
    /// check must come after, not before.
    pub fn stale(&self) -> bool {
        self.arena.slot(self.id.idx).gen.load(Ordering::Acquire) != self.id.gen
    }

    /// Blocking shared latch; the guard keeps the arena alive.
    #[allow(unsafe_code)]
    pub fn read_guard(&self) -> ReadGuard<V> {
        // SAFETY: the guard's embedded `Arena` clone keeps the slot
        // storage alive for at least as long as the unowned guard.
        let guard = unsafe { self.read_unowned() };
        ReadGuard {
            guard,
            arena: self.arena.clone(),
            id: self.id,
        }
    }

    /// Blocking exclusive latch; the guard keeps the arena alive.
    #[allow(unsafe_code)]
    pub fn write_guard(&self) -> WriteGuard<V> {
        // SAFETY: as for `read_guard`.
        let guard = unsafe { self.write_unowned() };
        WriteGuard {
            guard,
            arena: self.arena.clone(),
            id: self.id,
        }
    }

    /// Non-blocking shared probe (fast path only), as
    /// [`FcfsRwLock::try_read_arc`](cbtree_sync::FcfsRwLock::try_read_arc).
    #[allow(unsafe_code)]
    pub fn try_read_guard(&self) -> Option<ReadGuard<V>> {
        // SAFETY: as for `read_guard`.
        let guard = unsafe { self.try_read_unowned() }?;
        Some(ReadGuard {
            guard,
            arena: self.arena.clone(),
            id: self.id,
        })
    }

    /// Non-blocking exclusive probe (fast path only).
    #[allow(unsafe_code)]
    pub fn try_write_guard(&self) -> Option<WriteGuard<V>> {
        // SAFETY: as for `read_guard`.
        let guard = unsafe { self.try_write_unowned() }?;
        Some(WriteGuard {
            guard,
            arena: self.arena.clone(),
            id: self.id,
        })
    }
}

// ---------------------------------------------------------------------
// Guards: unowned latch guards plus an arena keepalive.
// ---------------------------------------------------------------------

/// Shared latch guard on an arena slot. Field order is load-bearing:
/// the latch releases before the arena keepalive drops.
#[must_use = "dropping the guard releases the latch"]
pub struct ReadGuard<V> {
    guard: UnownedReadGuard<Node<V>>,
    arena: Arena<V>,
    id: NodeId,
}

/// Exclusive latch guard on an arena slot (see [`ReadGuard`]).
#[must_use = "dropping the guard releases the latch"]
pub struct WriteGuard<V> {
    guard: UnownedWriteGuard<Node<V>>,
    arena: Arena<V>,
    id: NodeId,
}

macro_rules! impl_arena_guard {
    ($guard:ident) => {
        impl<V> $guard<V> {
            /// The latched slot's id.
            pub fn id(&self) -> NodeId {
                self.id
            }

            /// A fresh handle to the latched node.
            pub fn node_ref(&self) -> NodeRef<V> {
                self.arena.at(self.id)
            }

            /// A handle to `id` in the same arena (how a crab descent
            /// materializes the child named by a latched parent).
            pub fn at(&self, id: NodeId) -> NodeRef<V> {
                self.arena.at(id)
            }

            /// Whether the slot was recycled since the handle this
            /// guard was taken through was created (meaningful only
            /// when the handle crossed an unlatched window; see
            /// [`NodeRef::stale`]).
            pub fn stale(&self) -> bool {
                self.arena.slot(self.id.idx).gen.load(Ordering::Acquire) != self.id.gen
            }
        }

        impl<V> Deref for $guard<V> {
            type Target = Node<V>;
            fn deref(&self) -> &Node<V> {
                &self.guard
            }
        }

        impl<V: fmt::Debug> fmt::Debug for $guard<V> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&**self, f)
            }
        }
    };
}

impl_arena_guard!(ReadGuard);
impl_arena_guard!(WriteGuard);

impl<V> DerefMut for WriteGuard<V> {
    fn deref_mut(&mut self) -> &mut Node<V> {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_vec_basics() {
        let mut v: InlineVec<u64, 8> = InlineVec::new();
        assert!(v.is_empty());
        for k in [3, 1, 2] {
            v.push(k);
        }
        assert_eq!(&*v, &[3, 1, 2]);
        v.insert(1, 9);
        assert_eq!(&*v, &[3, 9, 1, 2]);
        assert_eq!(v.remove(0), 3);
        assert_eq!(&*v, &[9, 1, 2]);
        assert_eq!(v.pop(), Some(2));
        let tail = v.split_off(1);
        assert_eq!(&*v, &[9]);
        assert_eq!(&*tail, &[1]);
        assert_eq!(InlineVec::<u64, 4>::from_slice(&[7, 8])[1], 8);
    }

    #[test]
    #[should_panic(expected = "inline buffer overflow")]
    fn inline_vec_overflow_panics() {
        let mut v: InlineVec<u64, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn locate_covers_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(63), (0, 63));
        assert_eq!(locate(64), (1, 0));
        assert_eq!(locate(191), (1, 127));
        assert_eq!(locate(192), (2, 0));
        assert_eq!(locate(447), (2, 255));
        assert_eq!(locate(448), (3, 0));
    }

    #[test]
    fn node_id_packs_and_unpacks() {
        let id = NodeId {
            idx: 0xDEAD,
            gen: 0xBEEF,
        };
        assert_eq!(NodeId::from_bits(id.to_bits()), id);
        assert_eq!(NodeId::from_bits(0), NodeId::default());
    }

    #[test]
    fn alloc_then_recycle_reuses_the_slot_with_a_new_generation() {
        let arena: Arena<u64> = Arena::new(SamplePeriod::EXACT);
        let node = arena.alloc(Node::new_leaf());
        let id = node.id();
        assert!(!node.stale());

        let mut g = node.write_guard();
        arena.retire(&mut g);
        drop(g);
        arena.recycle(id);
        assert!(node.stale(), "retire bumps the generation");

        let again = arena.alloc(Node::new_leaf());
        assert_eq!(again.id().idx, id.idx, "free list recycles the slot");
        assert_eq!(again.id().gen, id.gen + 1);
        assert!(!again.stale());
        assert!(node.stale(), "old handle stays convicted");
        assert_eq!(arena.recycled(), 1);
        assert_eq!(arena.allocated(), 2);
    }

    #[test]
    fn growth_keeps_old_slots_stable() {
        let arena: Arena<u64> = Arena::new(SamplePeriod::EXACT);
        let first = arena.alloc(Node::new_leaf());
        let addr_before = std::ptr::from_ref(&*first) as usize;
        // Force growth past several segments.
        let handles: Vec<_> = (0..300)
            .map(|k| {
                let mut n = Node::new_leaf();
                n.leaf_insert(k, k);
                arena.alloc(n)
            })
            .collect();
        assert_eq!(std::ptr::from_ref(&*first) as usize, addr_before);
        for (k, h) in handles.iter().enumerate() {
            assert_eq!(h.read().leaf_get(k as u64), Some(&(k as u64)));
        }
    }

    #[test]
    fn recycle_under_contention_never_resurrects_a_stale_handle() {
        let arena: Arena<u64> = Arena::new(SamplePeriod::EXACT);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            // Churner: alloc/retire/recycle in a tight loop.
            s.spawn(|| {
                for i in 0..20_000u64 {
                    let mut n = Node::new_leaf();
                    n.leaf_insert(i, i);
                    let h = arena.alloc(n);
                    let id = h.id();
                    let mut g = h.write_guard();
                    arena.retire(&mut g);
                    drop(g);
                    arena.recycle(id);
                }
                stop.store(true, Ordering::Relaxed);
            });
            // Observer: handles taken before a retire must read as stale
            // afterwards; a fresh handle must never be stale.
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let h = arena.alloc(Node::new_leaf());
                    assert!(!h.stale(), "fresh handle can never be stale");
                    let id = h.id();
                    let mut g = h.write_guard();
                    arena.retire(&mut g);
                    drop(g);
                    assert!(h.stale(), "retired handle must convict");
                    arena.recycle(id);
                }
            });
        });
        assert!(arena.recycled() >= 20_000);
    }
}
