//! Strict Two-Phase Locking over the whole descent — the baseline
//! protocol. Every latch (shared for searches, exclusive for updates) is
//! retained until the operation completes. Correct, simple, and — as the
//! paper's framework quantifies — an order of magnitude less concurrent
//! than even naive lock-coupling, because the root's exclusive latch is
//! held for the whole update.

use crate::node::{check_invariants, make_root, Node, NodeRef};
use crate::writepath::{lock_root_read, lock_root_write, ReadGuard, WriteGuard};
use cbtree_sync::{FcfsRwLock as RwLock, SamplePeriod};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent B+-tree under strict two-phase latching.
#[derive(Debug)]
pub struct TwoPhaseTree<V> {
    root: RwLock<NodeRef<V>>,
    cap: usize,
    len: AtomicUsize,
    sample: SamplePeriod,
}

impl<V> TwoPhaseTree<V> {
    /// Creates an empty tree with at most `capacity` keys per node and
    /// exact lock timing.
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn new(capacity: usize) -> Self {
        TwoPhaseTree::with_sampling(capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact).
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn with_sampling(capacity: usize, sample: SamplePeriod) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        TwoPhaseTree {
            root: RwLock::new(Node::new_leaf().into_ref_sampled(sample)),
            cap: capacity,
            len: AtomicUsize::new(0),
            sample,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current height (levels).
    pub fn height(&self) -> usize {
        self.root.read().read().level
    }

    /// Exclusive descent retaining *every* latch (never releases).
    fn descend_all_exclusive(&self, key: u64) -> Vec<WriteGuard<V>> {
        let mut held: Vec<WriteGuard<V>> = vec![lock_root_write(&self.root)];
        loop {
            let child = {
                let top = held.last().expect("non-empty");
                if top.is_leaf() {
                    return held;
                }
                top.child_for(key)
            };
            held.push(child.write_arc());
        }
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        let mut held = self.descend_all_exclusive(key);
        let leaf = held.last_mut().expect("reaches a leaf");
        let old = leaf.leaf_insert(key, val);
        if old.is_some() {
            return old;
        }
        self.len.fetch_add(1, Ordering::AcqRel);
        // Split upward; the whole path is latched.
        let mut idx = held.len() - 1;
        while held[idx].overfull(self.cap) {
            let (sep, sib) = held[idx].half_split(self.sample);
            if idx == 0 {
                let old_root = Arc::clone(cbtree_sync::ArcRwLockWriteGuard::rwlock(&held[0]));
                let level = held[0].level + 1;
                let new_root = make_root(old_root, sep, sib, level, self.sample);
                *self.root.write() = new_root;
                break;
            }
            held[idx - 1].insert_separator(sep, sib);
            idx -= 1;
        }
        None
    }

    /// Removes `key`, returning its value if present (merge-at-empty with
    /// lazy reclamation).
    pub fn remove(&self, key: &u64) -> Option<V> {
        let mut held = self.descend_all_exclusive(*key);
        let leaf = held.last_mut().expect("reaches a leaf");
        let old = leaf.leaf_remove(*key);
        if old.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        old
    }

    /// Whether `key` is present (shared latches retained over the whole
    /// path, per strict 2PL).
    pub fn contains_key(&self, key: &u64) -> bool {
        let mut held: Vec<ReadGuard<V>> = vec![lock_root_read(&self.root)];
        loop {
            let top = held.last().expect("non-empty");
            if top.is_leaf() {
                return top.keys.binary_search(key).is_ok();
            }
            let child = top.child_for(*key);
            held.push(child.read_arc());
        }
    }

    /// Checks structural invariants (quiescent use).
    pub fn check(&self) -> Result<(), String> {
        check_invariants(&self.root.read(), self.cap)
    }

    /// The current root handle (for quiescent instrumentation walks).
    pub fn root_handle(&self) -> NodeRef<V> {
        Arc::clone(&self.root.read())
    }
}

impl<V: Clone> TwoPhaseTree<V> {
    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        let mut held: Vec<ReadGuard<V>> = vec![lock_root_read(&self.root)];
        loop {
            let top = held.last().expect("non-empty");
            if top.is_leaf() {
                return top.leaf_get(*key).cloned();
            }
            let child = top.child_for(*key);
            held.push(child.read_arc());
        }
    }

    /// Ascending range scan over `[lo, hi)` via the leaf chain, one
    /// shared latch at a time. Weakly consistent under concurrent
    /// updates (see [`crate::node::collect_range`]).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        if lo < hi {
            let leaf = crate::writepath::leaf_for(&self.root, lo);
            crate::node::collect_range(leaf, lo, hi, &mut out);
        }
        out
    }
}

impl<V> Default for TwoPhaseTree<V> {
    fn default() -> Self {
        TwoPhaseTree::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = TwoPhaseTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0x00DD_BA11_u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let key = (state >> 33) % 300;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_updates_serialize_but_stay_correct() {
        let tree = Arc::new(TwoPhaseTree::new(6));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        tree.insert(i * 4 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 4_000);
        tree.check().unwrap();
    }

    #[test]
    fn readers_share_the_whole_path() {
        let tree = Arc::new(TwoPhaseTree::new(8));
        for k in 0..500u64 {
            tree.insert(k, k);
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(tree.get(&k), Some(k));
                    }
                });
            }
        });
    }

    #[test]
    fn grows_through_root_splits() {
        let tree = TwoPhaseTree::new(3);
        for k in 0..500u64 {
            tree.insert(k, ());
        }
        assert!(tree.height() >= 4);
        tree.check().unwrap();
    }
}
