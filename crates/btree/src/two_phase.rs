//! The Two-Phase-Locking baseline tree.
//!
//! The pessimistic straw-man the paper measures the real protocols
//! against: every descent — reads included — retains *all* of its
//! latches until the operation completes (strict 2PL over the traversed
//! path, with latches standing in for locks). Every operation therefore
//! holds the root's latch for its whole duration, which is exactly why
//! its throughput collapses as soon as updates appear.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// The strict-2PL baseline strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoPhaseStrategy;

impl LatchStrategy for TwoPhaseStrategy {
    const NAME: &'static str = "two-phase";
    const READ: ReadPolicy = ReadPolicy::RetainAll;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: true };
}

/// A concurrent B+-tree using strict two-phase latching (baseline).
pub type TwoPhaseTree<V> = DescentTree<V, TwoPhaseStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = TwoPhaseTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0x00DD_BA11_u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(3);
            let key = (state >> 33) % 300;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_updates_serialize_but_stay_correct() {
        let tree = Arc::new(TwoPhaseTree::new(6));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        tree.insert(i * 4 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 4_000);
        tree.check().unwrap();
    }

    #[test]
    fn readers_share_the_whole_path() {
        let tree = Arc::new(TwoPhaseTree::new(8));
        for k in 0..500u64 {
            tree.insert(k, k);
        }
        std::thread::scope(|s| {
            for _ in 0..8 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(tree.get(&k), Some(k));
                    }
                });
            }
        });
    }

    #[test]
    fn grows_through_root_splits() {
        let tree = TwoPhaseTree::new(3);
        for k in 0..500u64 {
            tree.insert(k, ());
        }
        assert!(tree.height() >= 4);
        tree.check().unwrap();
    }
}
