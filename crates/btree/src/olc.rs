//! The Optimistic Lock Coupling (OLC) tree.
//!
//! Readers take **no latches at all**: every node visit is a seqlock
//! read window against the node lock's packed version counter (see
//! `cbtree_sync::FcfsRwLock::read_optimistic`) — snapshot the version,
//! read unlatched, validate. Moving to a child is hand-over-hand in
//! versions: after the child's window closes the parent's recorded
//! version is re-validated, proving the routing decision was still
//! current when the child was read. A failed validation restarts the
//! descent from the deepest still-valid recorded ancestor; a node that
//! no longer covers the key (split inside the window) is recovered from
//! by chasing right links. Writers latch exactly as in naive
//! lock-coupling — exclusive crabbing, releasing ancestors above safe
//! children — so every structural change bumps the version of each node
//! it touches on latch release.
//!
//! This is the LeanStore/ART-style refinement the ROADMAP names as the
//! fourth protocol: against the paper's three 1990 algorithms it drives
//! the reader latch demand — the term the analytical models charge to
//! every search at every level — to zero, paying instead a small
//! restart probability that enters the model as rework.
//!
//! Because nodes live in a recycling slab arena (slots of vacuumed
//! leaves are reused — see [`crate::arena`]), version validation alone
//! is not enough: a handle held across an unlatched window may name a
//! slot that was retired and re-allocated, whose *fresh* version
//! validates fine. Every optimistic acceptance therefore also re-checks
//! the handle's slot **generation** after the validated window, and the
//! latched reads an OLC descent hands off to do the same before trusting
//! the guard.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// Whether OLC's latch-free read path may materialize a value of this
/// type *inside* an unvalidated read window.
///
/// `get`/`range` on an OLC tree clone the value out of the leaf while
/// no latch is held; a concurrent writer can expose the slot
/// mid-`memmove` (a byte-blend of two valid values) or behind a torn
/// length (bytes never initialized). `IN_WINDOW = true` commits the
/// type to surviving that: the failed validation that follows discards
/// the value, but the clone itself has already run on the torn bytes,
/// so it must have been harmless.
///
/// # Safety
///
/// An impl may set [`IN_WINDOW`](Self::IN_WINDOW) to `true` only for
/// plain old data: every byte pattern is a valid `Self` (no references,
/// no niches, no invalid discriminants — which rules out `bool` and
/// `char`), `Self` owns no heap (its `Clone` never dereferences a
/// stored pointer), and `Clone` is a side-effect-free bitwise copy. A
/// torn clone of such a type yields at worst a *wrong value*, which the
/// version re-check discards — never undefined behavior.
///
/// `IN_WINDOW = false` is always sound to declare: the engine
/// materializes such values under one brief shared leaf latch instead,
/// keeping the inner levels of the descent latch-free (see
/// `DescentTree::get`).
#[allow(unsafe_code)] // the trait's contract is exactly what makes the windows sound
pub unsafe trait OlcValue: Clone {
    /// Whether `clone` may run inside an unvalidated read window.
    const IN_WINDOW: bool;
}

macro_rules! olc_pod {
    ($($t:ty),* $(,)?) => {$(
        // SAFETY: plain old data — every bit pattern is a valid value,
        // no heap ownership, bitwise side-effect-free `Clone`.
        #[allow(unsafe_code)]
        unsafe impl OlcValue for $t {
            const IN_WINDOW: bool = true;
        }
    )*};
}
olc_pod!(
    (),
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64
);

macro_rules! olc_latched {
    ($($(#[$doc:meta])* $t:ty),* $(,)?) => {$(
        // SAFETY: `IN_WINDOW = false` is unconditionally sound — these
        // values are only ever cloned under a shared leaf latch.
        $(#[$doc])*
        #[allow(unsafe_code)]
        unsafe impl OlcValue for $t {
            const IN_WINDOW: bool = false;
        }
    )*};
}
// Heap owners, and single-byte types with invalid bit patterns (a torn
// length can expose uninitialized bytes, so even `bool` stays latched).
olc_latched!(String, bool, char);

// SAFETY: latched materialization (`IN_WINDOW = false`) is always sound.
#[allow(unsafe_code)]
unsafe impl<T: Clone> OlcValue for Vec<T> {
    const IN_WINDOW: bool = false;
}
// SAFETY: latched materialization (`IN_WINDOW = false`) is always sound.
#[allow(unsafe_code)]
unsafe impl<T: Clone> OlcValue for Box<T> {
    const IN_WINDOW: bool = false;
}
// SAFETY: latched materialization (`IN_WINDOW = false`) is always sound
// (a torn refcount pointer must never be dereferenced, so `Arc` clones
// of *values* stay under the leaf latch; the node *handles* the descent
// itself copies are plain `Copy` slab indices validated by slot
// generation, a separate discipline — see `crate::arena`).
#[allow(unsafe_code)]
unsafe impl<T: ?Sized> OlcValue for std::sync::Arc<T> {
    const IN_WINDOW: bool = false;
}
// SAFETY: latched materialization (`IN_WINDOW = false`) is always sound
// (torn bytes could form a dangling reference, which is invalid even
// before any dereference).
#[allow(unsafe_code)]
unsafe impl<T: ?Sized> OlcValue for &T {
    const IN_WINDOW: bool = false;
}
// SAFETY: latched materialization (`IN_WINDOW = false`) is always sound
// (`Option`'s discriminant layout is unspecified, so torn bytes could
// form an invalid value).
#[allow(unsafe_code)]
unsafe impl<T: Clone> OlcValue for Option<T> {
    const IN_WINDOW: bool = false;
}
// SAFETY: an array of in-window-safe elements is itself plain old data;
// otherwise it inherits the latched path.
#[allow(unsafe_code)]
unsafe impl<T: OlcValue, const N: usize> OlcValue for [T; N] {
    const IN_WINDOW: bool = T::IN_WINDOW;
}

/// The optimistic-lock-coupling strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OlcStrategy;

impl LatchStrategy for OlcStrategy {
    const NAME: &'static str = "olc";
    const READ: ReadPolicy = ReadPolicy::Olc;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: false };
}

/// A concurrent B+-tree using optimistic lock coupling.
pub type OlcTree<V> = DescentTree<V, OlcStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = OlcTree::new(6);
        let mut model = BTreeMap::new();
        let mut state = 0x5EED_01C0_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn readers_acquire_zero_latches() {
        let tree = OlcTree::new(6);
        for k in 0..2000u64 {
            tree.insert(k, k);
        }
        let before = tree.counters_snapshot();
        for k in 0..2000u64 {
            assert_eq!(tree.get(&k), Some(k));
            assert!(tree.contains_key(&k));
        }
        assert_eq!(tree.range(100, 200).len(), 100);
        let reads = tree.counters_snapshot().since(&before);
        assert_eq!(reads.r_latch_total(), 0, "OLC readers never latch");
        assert_eq!(reads.w_latch_total(), 0, "reads take no write latches");
        assert!(
            reads.v_validations as usize >= 2000 * tree.height(),
            "every node visit validates a version"
        );
    }

    #[test]
    fn single_threaded_reads_never_restart() {
        let tree = OlcTree::new(5);
        for k in 0..3000u64 {
            tree.insert(k, ());
        }
        let before = tree.counters_snapshot();
        for k in 0..3000u64 {
            assert!(tree.contains_key(&k));
        }
        let d = tree.counters_snapshot().since(&before);
        assert_eq!(d.restarts, 0, "no concurrent writers, no restarts");
        assert_eq!(d.v_restarts_writer + d.v_restarts_version, 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let tree = Arc::new(OlcTree::new(8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(t * 1_000_000 + i, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            assert_eq!(tree.get(&(t * 1_000_000 + 1999)), Some(t));
        }
    }

    #[test]
    fn concurrent_mixed_workload_conserves_keys() {
        let tree = Arc::new(OlcTree::new(5));
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        tree.check().unwrap();
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_survive_concurrent_splits() {
        let tree = Arc::new(OlcTree::new(4));
        for k in 0..500u64 {
            tree.insert(k * 100, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                // Dense inserts force many splits (and version bumps) in
                // the ranges the readers traverse unlatched.
                for k in 0..20_000u64 {
                    w.insert(2 * k + 1, k);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(r.get(&(k * 100)), Some(k), "pre-existing key lost");
                    }
                });
            }
        });
        tree.check().unwrap();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the subject
    fn in_window_gate_matches_type_shape() {
        // Plain old data may be cloned inside an unvalidated window…
        assert!(<u64 as OlcValue>::IN_WINDOW);
        assert!(<() as OlcValue>::IN_WINDOW);
        assert!(<[u32; 4] as OlcValue>::IN_WINDOW);
        // …heap owners and invalid-bit-pattern types never are.
        assert!(!<String as OlcValue>::IN_WINDOW);
        assert!(!<Vec<u8> as OlcValue>::IN_WINDOW);
        assert!(!<bool as OlcValue>::IN_WINDOW);
        assert!(!<Arc<u64> as OlcValue>::IN_WINDOW);
        assert!(!<&'static str as OlcValue>::IN_WINDOW);
        assert!(!<[String; 2] as OlcValue>::IN_WINDOW);
    }

    #[test]
    fn heap_values_materialize_under_leaf_latch() {
        // `String` values must never be cloned inside an unvalidated
        // window (a torn clone would dereference a torn pointer); the
        // engine routes them through the latched-leaf path instead.
        // Inner levels stay latch-free, so with height ≥ 2 the read
        // latch count is exactly one per get — never one per level.
        let tree = OlcTree::new(4);
        for k in 0..500u64 {
            tree.insert(k, format!("v{k}"));
        }
        assert!(tree.height() >= 2);
        let before = tree.counters_snapshot();
        for k in 0..500u64 {
            assert_eq!(tree.get(&k), Some(format!("v{k}")));
        }
        assert_eq!(tree.range(100, 110).len(), 10);
        let reads = tree.counters_snapshot().since(&before);
        assert!(reads.r_latch_total() > 0, "values cloned under a latch");
        assert!(
            (reads.r_latch_total() as usize) < 501 * tree.height(),
            "inner levels stay latch-free"
        );
        assert_eq!(reads.w_latch_total(), 0);
    }

    #[test]
    fn heap_values_survive_concurrent_splits() {
        let tree = Arc::new(OlcTree::new(4));
        for k in 0..300u64 {
            tree.insert(k * 100, format!("stable-{k}"));
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                for k in 0..10_000u64 {
                    w.insert(2 * k + 1, format!("churn-{k}"));
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..300u64 {
                        assert_eq!(
                            r.get(&(k * 100)).as_deref(),
                            Some(format!("stable-{k}").as_str()),
                            "pre-existing value lost or torn"
                        );
                    }
                });
            }
        });
        tree.check().unwrap();
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let tree = OlcTree::new(6);
        for k in 0..1000u64 {
            tree.insert(k, k * 2);
        }
        let got = tree.range(100, 120);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (100..120).collect::<Vec<_>>());
        assert!(got.iter().all(|&(k, v)| v == k * 2));
        assert!(tree.range(50, 50).is_empty());
        assert!(tree.range(2000, 3000).is_empty());
    }
}
