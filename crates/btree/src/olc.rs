//! The Optimistic Lock Coupling (OLC) tree.
//!
//! Readers take **no latches at all**: every node visit is a seqlock
//! read window against the node lock's packed version counter (see
//! `cbtree_sync::FcfsRwLock::read_optimistic`) — snapshot the version,
//! read unlatched, validate. Moving to a child is hand-over-hand in
//! versions: after the child's window closes the parent's recorded
//! version is re-validated, proving the routing decision was still
//! current when the child was read. A failed validation restarts the
//! descent from the deepest still-valid recorded ancestor; a node that
//! no longer covers the key (split inside the window) is recovered from
//! by chasing right links. Writers latch exactly as in naive
//! lock-coupling — exclusive crabbing, releasing ancestors above safe
//! children — so every structural change bumps the version of each node
//! it touches on latch release.
//!
//! This is the LeanStore/ART-style refinement the ROADMAP names as the
//! fourth protocol: against the paper's three 1990 algorithms it drives
//! the reader latch demand — the term the analytical models charge to
//! every search at every level — to zero, paying instead a small
//! restart probability that enters the model as rework.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// The optimistic-lock-coupling strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OlcStrategy;

impl LatchStrategy for OlcStrategy {
    const NAME: &'static str = "olc";
    const READ: ReadPolicy = ReadPolicy::Olc;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: false };
}

/// A concurrent B+-tree using optimistic lock coupling.
pub type OlcTree<V> = DescentTree<V, OlcStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = OlcTree::new(6);
        let mut model = BTreeMap::new();
        let mut state = 0x5EED_01C0_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn readers_acquire_zero_latches() {
        let tree = OlcTree::new(6);
        for k in 0..2000u64 {
            tree.insert(k, k);
        }
        let before = tree.counters_snapshot();
        for k in 0..2000u64 {
            assert_eq!(tree.get(&k), Some(k));
            assert!(tree.contains_key(&k));
        }
        assert_eq!(tree.range(100, 200).len(), 100);
        let reads = tree.counters_snapshot().since(&before);
        assert_eq!(reads.r_latch_total(), 0, "OLC readers never latch");
        assert_eq!(reads.w_latch_total(), 0, "reads take no write latches");
        assert!(
            reads.v_validations as usize >= 2000 * tree.height(),
            "every node visit validates a version"
        );
    }

    #[test]
    fn single_threaded_reads_never_restart() {
        let tree = OlcTree::new(5);
        for k in 0..3000u64 {
            tree.insert(k, ());
        }
        let before = tree.counters_snapshot();
        for k in 0..3000u64 {
            assert!(tree.contains_key(&k));
        }
        let d = tree.counters_snapshot().since(&before);
        assert_eq!(d.restarts, 0, "no concurrent writers, no restarts");
        assert_eq!(d.v_restarts_writer + d.v_restarts_version, 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let tree = Arc::new(OlcTree::new(8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(t * 1_000_000 + i, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            assert_eq!(tree.get(&(t * 1_000_000 + 1999)), Some(t));
        }
    }

    #[test]
    fn concurrent_mixed_workload_conserves_keys() {
        let tree = Arc::new(OlcTree::new(5));
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        tree.check().unwrap();
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_survive_concurrent_splits() {
        let tree = Arc::new(OlcTree::new(4));
        for k in 0..500u64 {
            tree.insert(k * 100, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                // Dense inserts force many splits (and version bumps) in
                // the ranges the readers traverse unlatched.
                for k in 0..20_000u64 {
                    w.insert(2 * k + 1, k);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(r.get(&(k * 100)), Some(k), "pre-existing key lost");
                    }
                });
            }
        });
        tree.check().unwrap();
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let tree = OlcTree::new(6);
        for k in 0..1000u64 {
            tree.insert(k, k * 2);
        }
        let got = tree.range(100, 120);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (100..120).collect::<Vec<_>>());
        assert!(got.iter().all(|&(k, v)| v == k * 2));
        assert!(tree.range(50, 50).is_empty());
        assert!(tree.range(2000, 3000).is_empty());
    }
}
