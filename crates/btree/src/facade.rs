//! Protocol-erased facade: pick the concurrency-control algorithm at run
//! time, as the paper's comparisons do.

use crate::{BLinkTree, LockCouplingTree, OptimisticTree, TwoPhaseTree};
use cbtree_sync::SamplePeriod;

/// The three latching protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Naive Lock-coupling (Bayer–Schkolnick).
    LockCoupling,
    /// Optimistic Descent (Bayer–Schkolnick).
    OptimisticDescent,
    /// Link-type / B-link (Lehman–Yao).
    BLink,
    /// Strict Two-Phase latching over the whole path (baseline).
    TwoPhase,
}

impl Protocol {
    /// The paper's three protocols, in its presentation order.
    pub const ALL: [Protocol; 3] = [
        Protocol::LockCoupling,
        Protocol::OptimisticDescent,
        Protocol::BLink,
    ];

    /// The paper's protocols plus the Two-Phase baseline.
    pub const ALL_WITH_BASELINE: [Protocol; 4] = [
        Protocol::TwoPhase,
        Protocol::LockCoupling,
        Protocol::OptimisticDescent,
        Protocol::BLink,
    ];

    /// Short display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::LockCoupling => "lock-coupling",
            Protocol::OptimisticDescent => "optimistic",
            Protocol::BLink => "b-link",
            Protocol::TwoPhase => "two-phase",
        }
    }
}

/// A concurrent B+-tree with the protocol chosen at construction.
#[derive(Debug)]
pub enum ConcurrentBTree<V> {
    /// Naive lock-coupling tree.
    Coupling(LockCouplingTree<V>),
    /// Optimistic-descent tree.
    Optimistic(OptimisticTree<V>),
    /// B-link tree.
    BLink(BLinkTree<V>),
    /// Two-phase latching tree (baseline).
    TwoPhase(TwoPhaseTree<V>),
}

impl<V> ConcurrentBTree<V> {
    /// Creates an empty tree with the given protocol and node capacity
    /// (exact lock timing).
    pub fn new(protocol: Protocol, capacity: usize) -> Self {
        ConcurrentBTree::with_sampling(protocol, capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact; sampled
    /// durations are scaled so derived statistics stay unbiased).
    pub fn with_sampling(protocol: Protocol, capacity: usize, sample: SamplePeriod) -> Self {
        match protocol {
            Protocol::LockCoupling => {
                ConcurrentBTree::Coupling(LockCouplingTree::with_sampling(capacity, sample))
            }
            Protocol::OptimisticDescent => {
                ConcurrentBTree::Optimistic(OptimisticTree::with_sampling(capacity, sample))
            }
            Protocol::BLink => ConcurrentBTree::BLink(BLinkTree::with_sampling(capacity, sample)),
            Protocol::TwoPhase => {
                ConcurrentBTree::TwoPhase(TwoPhaseTree::with_sampling(capacity, sample))
            }
        }
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        match self {
            ConcurrentBTree::Coupling(_) => Protocol::LockCoupling,
            ConcurrentBTree::Optimistic(_) => Protocol::OptimisticDescent,
            ConcurrentBTree::BLink(_) => Protocol::BLink,
            ConcurrentBTree::TwoPhase(_) => Protocol::TwoPhase,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        match self {
            ConcurrentBTree::Coupling(t) => t.len(),
            ConcurrentBTree::Optimistic(t) => t.len(),
            ConcurrentBTree::BLink(t) => t.len(),
            ConcurrentBTree::TwoPhase(t) => t.len(),
        }
    }

    /// Node capacity (max keys per node) the tree was built with.
    pub fn capacity(&self) -> usize {
        match self {
            ConcurrentBTree::Coupling(t) => t.capacity(),
            ConcurrentBTree::Optimistic(t) => t.capacity(),
            ConcurrentBTree::BLink(t) => t.capacity(),
            ConcurrentBTree::TwoPhase(t) => t.capacity(),
        }
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        match self {
            ConcurrentBTree::Coupling(t) => t.insert(key, val),
            ConcurrentBTree::Optimistic(t) => t.insert(key, val),
            ConcurrentBTree::BLink(t) => t.insert(key, val),
            ConcurrentBTree::TwoPhase(t) => t.insert(key, val),
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &u64) -> Option<V> {
        match self {
            ConcurrentBTree::Coupling(t) => t.remove(key),
            ConcurrentBTree::Optimistic(t) => t.remove(key),
            ConcurrentBTree::BLink(t) => t.remove(key),
            ConcurrentBTree::TwoPhase(t) => t.remove(key),
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        match self {
            ConcurrentBTree::Coupling(t) => t.contains_key(key),
            ConcurrentBTree::Optimistic(t) => t.contains_key(key),
            ConcurrentBTree::BLink(t) => t.contains_key(key),
            ConcurrentBTree::TwoPhase(t) => t.contains_key(key),
        }
    }

    /// Checks structural invariants (quiescent use).
    pub fn check(&self) -> Result<(), String> {
        match self {
            ConcurrentBTree::Coupling(t) => t.check(),
            ConcurrentBTree::Optimistic(t) => t.check(),
            ConcurrentBTree::BLink(t) => t.check(),
            ConcurrentBTree::TwoPhase(t) => t.check(),
        }
    }

    /// Current height (levels; 1 = a lone leaf root).
    pub fn height(&self) -> usize {
        match self {
            ConcurrentBTree::Coupling(t) => t.height(),
            ConcurrentBTree::Optimistic(t) => t.height(),
            ConcurrentBTree::BLink(t) => t.height(),
            ConcurrentBTree::TwoPhase(t) => t.height(),
        }
    }

    /// The current root handle (for quiescent instrumentation walks, e.g.
    /// aggregating per-level lock statistics).
    pub fn root_handle(&self) -> crate::node::NodeRef<V> {
        match self {
            ConcurrentBTree::Coupling(t) => t.root_handle(),
            ConcurrentBTree::Optimistic(t) => t.root_handle(),
            ConcurrentBTree::BLink(t) => t.root_handle(),
            ConcurrentBTree::TwoPhase(t) => t.root_handle(),
        }
    }
}

impl<V: Clone> ConcurrentBTree<V> {
    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        match self {
            ConcurrentBTree::Coupling(t) => t.get(key),
            ConcurrentBTree::Optimistic(t) => t.get(key),
            ConcurrentBTree::BLink(t) => t.get(key),
            ConcurrentBTree::TwoPhase(t) => t.get(key),
        }
    }

    /// Ascending range scan over `[lo, hi)` (weakly consistent under
    /// concurrent updates).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        match self {
            ConcurrentBTree::Coupling(t) => t.range(lo, hi),
            ConcurrentBTree::Optimistic(t) => t.range(lo, hi),
            ConcurrentBTree::BLink(t) => t.range(lo, hi),
            ConcurrentBTree::TwoPhase(t) => t.range(lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_behave_identically_sequentially() {
        for p in Protocol::ALL {
            let t = ConcurrentBTree::new(p, 6);
            assert_eq!(t.protocol(), p);
            assert!(t.is_empty());
            for k in 0..300u64 {
                assert!(t.insert(k, k * 2).is_none(), "{p:?}");
            }
            assert_eq!(t.len(), 300);
            assert_eq!(t.get(&100), Some(200));
            assert!(t.contains_key(&299));
            assert_eq!(t.remove(&100), Some(200));
            assert_eq!(t.get(&100), None);
            assert_eq!(t.len(), 299);
            t.check().unwrap();
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Protocol::ALL_WITH_BASELINE
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names.len(), 4);
    }
}
