//! Protocol-erased facade: pick the concurrency-control algorithm at run
//! time, as the paper's comparisons do.

use crate::batch::{BatchOp, BatchOutcome};
use crate::map::ConcurrentMap;
use crate::{
    BLinkTree, LockCouplingTree, OlcTree, OlcValue, OpCountersSnapshot, OptimisticTree,
    RecoveryLeafTree, RecoveryNaiveTree, TwoPhaseTree,
};
use cbtree_sync::SamplePeriod;
use std::fmt;
use std::str::FromStr;

/// The latching protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Naive Lock-coupling (Bayer–Schkolnick).
    LockCoupling,
    /// Optimistic Descent (Bayer–Schkolnick).
    OptimisticDescent,
    /// Link-type / B-link (Lehman–Yao).
    BLink,
    /// Optimistic Lock Coupling: latch-free version-validated reads,
    /// lock-coupling writes (the ROADMAP's post-1990 fourth protocol).
    Olc,
    /// Strict Two-Phase latching over the whole path (baseline).
    TwoPhase,
    /// Lock-coupling with naive recovery: every exclusive latch retained
    /// to transaction commit (§6/§7).
    RecoveryNaive,
    /// Lock-coupling with leaf-only recovery: the leaf's exclusive latch
    /// retained to transaction commit (§6/§7).
    RecoveryLeaf,
}

impl Protocol {
    /// The paper's three protocols, in its presentation order.
    pub const ALL: [Protocol; 3] = [
        Protocol::LockCoupling,
        Protocol::OptimisticDescent,
        Protocol::BLink,
    ];

    /// The paper's protocols plus the Two-Phase baseline.
    pub const ALL_WITH_BASELINE: [Protocol; 4] = [
        Protocol::TwoPhase,
        Protocol::LockCoupling,
        Protocol::OptimisticDescent,
        Protocol::BLink,
    ];

    /// Every protocol, recovery variants included.
    pub const ALL_WITH_RECOVERY: [Protocol; 7] = [
        Protocol::TwoPhase,
        Protocol::LockCoupling,
        Protocol::OptimisticDescent,
        Protocol::BLink,
        Protocol::Olc,
        Protocol::RecoveryNaive,
        Protocol::RecoveryLeaf,
    ];

    /// Short display name used in benchmark tables. Round-trips through
    /// [`Protocol::from_str`].
    pub fn name(self) -> &'static str {
        match self {
            Protocol::LockCoupling => "lock-coupling",
            Protocol::OptimisticDescent => "optimistic",
            Protocol::BLink => "b-link",
            Protocol::Olc => "olc",
            Protocol::TwoPhase => "two-phase",
            Protocol::RecoveryNaive => "recovery-naive",
            Protocol::RecoveryLeaf => "recovery-leaf",
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Protocol {
    type Err = String;

    /// Parses a protocol name; accepts the canonical [`Protocol::name`]
    /// spellings plus the historical CLI aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lock-coupling" | "coupling" | "naive" => Ok(Protocol::LockCoupling),
            "optimistic" => Ok(Protocol::OptimisticDescent),
            "b-link" | "blink" | "link" => Ok(Protocol::BLink),
            "olc" | "optimistic-lock-coupling" => Ok(Protocol::Olc),
            "two-phase" | "twophase" => Ok(Protocol::TwoPhase),
            "recovery-naive" => Ok(Protocol::RecoveryNaive),
            "recovery-leaf" => Ok(Protocol::RecoveryLeaf),
            other => Err(format!(
                "unknown protocol {other:?} (expected one of: {})",
                Protocol::ALL_WITH_RECOVERY.map(|p| p.name()).join(", ")
            )),
        }
    }
}

/// A concurrent B+-tree with the protocol chosen at construction,
/// dispatching through the [`ConcurrentMap`] interface.
pub struct ConcurrentBTree<V> {
    inner: Box<dyn ConcurrentMap<V>>,
    protocol: Protocol,
}

impl<V> fmt::Debug for ConcurrentBTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentBTree")
            .field("protocol", &self.protocol)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<V: OlcValue + Send + Sync + 'static> ConcurrentBTree<V> {
    /// Creates an empty tree with the given protocol and node capacity
    /// (exact lock timing).
    pub fn new(protocol: Protocol, capacity: usize) -> Self {
        ConcurrentBTree::with_sampling(protocol, capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact; sampled
    /// durations are scaled so derived statistics stay unbiased).
    pub fn with_sampling(protocol: Protocol, capacity: usize, sample: SamplePeriod) -> Self {
        let inner: Box<dyn ConcurrentMap<V>> = match protocol {
            Protocol::LockCoupling => Box::new(LockCouplingTree::with_sampling(capacity, sample)),
            Protocol::OptimisticDescent => {
                Box::new(OptimisticTree::with_sampling(capacity, sample))
            }
            Protocol::BLink => Box::new(BLinkTree::with_sampling(capacity, sample)),
            Protocol::Olc => Box::new(OlcTree::with_sampling(capacity, sample)),
            Protocol::TwoPhase => Box::new(TwoPhaseTree::with_sampling(capacity, sample)),
            Protocol::RecoveryNaive => Box::new(RecoveryNaiveTree::with_sampling(capacity, sample)),
            Protocol::RecoveryLeaf => Box::new(RecoveryLeafTree::with_sampling(capacity, sample)),
        };
        ConcurrentBTree { inner, protocol }
    }
}

impl<V> ConcurrentBTree<V> {
    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Node capacity (max keys per node) the tree was built with.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        self.inner.insert(key, val)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &u64) -> Option<V> {
        self.inner.remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        self.inner.contains_key(key)
    }

    /// Checks structural invariants (quiescent use).
    pub fn check(&self) -> Result<(), String> {
        self.inner.check()
    }

    /// Current height (levels; 1 = a lone leaf root).
    pub fn height(&self) -> usize {
        self.inner.height()
    }

    /// The current root handle (for quiescent instrumentation walks, e.g.
    /// aggregating per-level lock statistics).
    pub fn root_handle(&self) -> crate::node::NodeRef<V> {
        self.inner.root_handle()
    }

    /// Snapshot of the engine's uniform operation telemetry.
    pub fn counters(&self) -> OpCountersSnapshot {
        self.inner.counters()
    }

    /// Commits the calling thread's transaction (no-op except on the
    /// recovery protocols).
    pub fn txn_commit(&self) {
        self.inner.txn_commit()
    }

    /// Unlinks emptied leaves and recycles their arena slots, returning
    /// the number reclaimed (0 for the link protocols, which keep lazy
    /// reclamation).
    pub fn vacuum(&self) -> usize {
        self.inner.vacuum()
    }

    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        self.inner.get(key)
    }

    /// Ascending range scan over `[lo, hi)` (weakly consistent under
    /// concurrent updates).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        self.inner.range(lo, hi)
    }

    /// Executes a batch with key-sorted amortized descent, returning
    /// per-operation results in submission order plus descent
    /// accounting (see [`crate::batch`]).
    pub fn execute_batch(&self, ops: Vec<BatchOp<V>>) -> BatchOutcome<V> {
        self.inner.execute_batch(ops)
    }
}

impl<V> ConcurrentMap<V> for ConcurrentBTree<V> {
    fn protocol_name(&self) -> &'static str {
        self.protocol.name()
    }

    fn len(&self) -> usize {
        ConcurrentBTree::len(self)
    }

    fn capacity(&self) -> usize {
        ConcurrentBTree::capacity(self)
    }

    fn height(&self) -> usize {
        ConcurrentBTree::height(self)
    }

    fn insert(&self, key: u64, val: V) -> Option<V> {
        ConcurrentBTree::insert(self, key, val)
    }

    fn remove(&self, key: &u64) -> Option<V> {
        ConcurrentBTree::remove(self, key)
    }

    fn get(&self, key: &u64) -> Option<V> {
        ConcurrentBTree::get(self, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        ConcurrentBTree::contains_key(self, key)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        ConcurrentBTree::range(self, lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        ConcurrentBTree::check(self)
    }

    fn root_handle(&self) -> crate::node::NodeRef<V> {
        ConcurrentBTree::root_handle(self)
    }

    fn counters(&self) -> OpCountersSnapshot {
        ConcurrentBTree::counters(self)
    }

    fn txn_commit(&self) {
        ConcurrentBTree::txn_commit(self)
    }

    fn vacuum(&self) -> usize {
        ConcurrentBTree::vacuum(self)
    }

    fn execute_batch(&self, ops: Vec<BatchOp<V>>) -> BatchOutcome<V> {
        ConcurrentBTree::execute_batch(self, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_behave_identically_sequentially() {
        for p in Protocol::ALL {
            let t = ConcurrentBTree::new(p, 6);
            assert_eq!(t.protocol(), p);
            assert!(t.is_empty());
            for k in 0..300u64 {
                assert!(t.insert(k, k * 2).is_none(), "{p:?}");
            }
            assert_eq!(t.len(), 300);
            assert_eq!(t.get(&100), Some(200));
            assert!(t.contains_key(&299));
            assert_eq!(t.remove(&100), Some(200));
            assert_eq!(t.get(&100), None);
            assert_eq!(t.len(), 299);
            t.check().unwrap();
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Protocol::ALL_WITH_RECOVERY
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn names_round_trip_through_fromstr_and_display() {
        for p in Protocol::ALL_WITH_RECOVERY {
            assert_eq!(p.name().parse::<Protocol>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        // Historical CLI aliases keep working.
        assert_eq!("blink".parse::<Protocol>(), Ok(Protocol::BLink));
        assert_eq!("link".parse::<Protocol>(), Ok(Protocol::BLink));
        assert_eq!("coupling".parse::<Protocol>(), Ok(Protocol::LockCoupling));
        assert_eq!("naive".parse::<Protocol>(), Ok(Protocol::LockCoupling));
        assert_eq!("twophase".parse::<Protocol>(), Ok(Protocol::TwoPhase));
        assert!("nope".parse::<Protocol>().is_err());
    }
}
