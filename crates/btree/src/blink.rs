//! The Link-type tree (Lehman–Yao B-link).
//!
//! Every node carries a high key and a right link (maintained by
//! [`crate::node::Node::half_split`]). Operations hold **at most one
//! latch at a time**: a descent latches a node, decides, releases, then
//! latches the next. The price is that a node observed without a latch
//! may have split in the meantime — the key may now live in a right
//! sibling. The cure is the link: whenever a latched node does not cover
//! the search key, chase `right` until one does. Splits are half-splits:
//! the new sibling becomes reachable via the link *before* its separator
//! is posted in the parent, so the parent insertion happens afterwards,
//! under its own (single) latch.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// The Lehman–Yao link strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct BLinkStrategy;

impl LatchStrategy for BLinkStrategy {
    const NAME: &'static str = "b-link";
    const READ: ReadPolicy = ReadPolicy::Link;
    const UPDATE: UpdatePolicy = UpdatePolicy::Link;
}

/// A concurrent B+-tree using the Lehman–Yao link protocol.
pub type BLinkTree<V> = DescentTree<V, BLinkStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = BLinkTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0xABCD_EF01_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = (state >> 33) % 400;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_inserts_all_found() {
        let tree = Arc::new(BLinkTree::new(6));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_500u64 {
                        tree.insert(i * 8 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 20_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            for i in (0..2_500u64).step_by(97) {
                assert_eq!(tree.get(&(i * 8 + t)), Some(t));
            }
        }
    }

    #[test]
    fn concurrent_mixed_conserves_keys() {
        let tree = Arc::new(BLinkTree::new(5));
        for k in (0..8000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 4000);
        tree.check().unwrap();
        for k in 0..8000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_survive_concurrent_splits() {
        let tree = Arc::new(BLinkTree::new(4));
        for k in 0..500u64 {
            tree.insert(k * 100, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                // Dense inserts force many splits in ranges readers scan;
                // odd keys never collide with the readers' even keys.
                for k in 0..20_000u64 {
                    w.insert(2 * k + 1, k);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(r.get(&(k * 100)), Some(k), "pre-existing key lost");
                    }
                });
            }
        });
        tree.check().unwrap();
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let tree = BLinkTree::new(6);
        for k in 0..1000u64 {
            tree.insert(k, k * 2);
        }
        let got = tree.range(100, 120);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (100..120).collect::<Vec<_>>());
        assert!(got.iter().all(|&(k, v)| v == k * 2));
        assert!(tree.range(50, 50).is_empty());
        assert!(tree.range(2000, 3000).is_empty());
    }

    #[test]
    fn crossings_occur_under_contention_but_rarely() {
        let tree = Arc::new(BLinkTree::new(4));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    // All threads hammer the same growing region.
                    for i in 0..5_000u64 {
                        tree.insert(i * 8 + t, ());
                    }
                });
            }
        });
        let per_op = tree.crossing_count() as f64 / 40_000.0;
        assert!(per_op < 0.5, "crossings per op {per_op} should be small");
        tree.check().unwrap();
    }

    #[test]
    fn empty_leaves_persist_and_stay_usable() {
        let tree = BLinkTree::new(4);
        for k in 0..100u64 {
            tree.insert(k, k);
        }
        for k in 0..100u64 {
            tree.remove(&k);
        }
        assert!(tree.is_empty());
        for k in 0..100u64 {
            assert!(tree.insert(k, k).is_none());
        }
        assert_eq!(tree.len(), 100);
        tree.check().unwrap();
    }
}
