//! The B-link tree (Lehman–Yao, with the Lanin–Shasha/Sagiv refinements
//! the paper's Link-type algorithm assumes).
//!
//! Every node carries a *high key* (the exclusive upper bound of its key
//! range) and a *right link* to its same-level successor. A split is a
//! *half-split*: the overfull node moves its upper half into a fresh
//! right sibling — linked in and immediately reachable — and only then,
//! after releasing the node, is the separator posted into the parent
//! under the parent's own latch. Any traversal that lands on a node whose
//! range no longer covers its key simply chases right links.
//!
//! Consequences: operations hold **at most one latch at a time**, readers
//! never block structure changes above the node they are on, and the
//! tree is correct under any interleaving of lookups, inserts, removes
//! and splits. Deletes are merge-at-empty with lazy reclamation (emptied
//! nodes persist), the regime the paper analyzes.

use crate::node::{check_invariants, make_root, Children, Node, NodeRef};
use crate::writepath::WriteGuard;
use cbtree_sync::{FcfsRwLock as RwLock, SamplePeriod};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent B+-tree using the Lehman–Yao link protocol.
#[derive(Debug)]
pub struct BLinkTree<V> {
    root: RwLock<NodeRef<V>>,
    cap: usize,
    len: AtomicUsize,
    crossings: AtomicU64,
    sample: SamplePeriod,
}

impl<V> BLinkTree<V> {
    /// Creates an empty tree with at most `capacity` keys per node and
    /// exact lock timing.
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn new(capacity: usize) -> Self {
        BLinkTree::with_sampling(capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact).
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn with_sampling(capacity: usize, sample: SamplePeriod) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        BLinkTree {
            root: RwLock::new(Node::new_leaf().into_ref_sampled(sample)),
            cap: capacity,
            len: AtomicUsize::new(0),
            crossings: AtomicU64::new(0),
            sample,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current height (levels).
    pub fn height(&self) -> usize {
        self.root.read().read().level
    }

    /// Total right-link chases performed by all operations so far — the
    /// statistic behind the paper's Figure 9 (link crossing is rare).
    pub fn crossing_count(&self) -> u64 {
        self.crossings.load(Ordering::Relaxed)
    }

    fn note_crossing(&self) {
        self.crossings.fetch_add(1, Ordering::Relaxed);
    }

    /// Latch-free-style descent (one shared latch at a time) to the leaf
    /// *candidate* for `key`, recording the visited node of every
    /// internal level as ascent hints. The caller must still chase right
    /// after latching the returned leaf.
    fn descend(&self, key: u64, stack: &mut Vec<NodeRef<V>>) -> NodeRef<V> {
        let mut cur: NodeRef<V> = Arc::clone(&self.root.read());
        loop {
            let next = {
                let g = cur.read();
                if !g.covers(key) {
                    self.note_crossing();
                    Arc::clone(
                        g.right
                            .as_ref()
                            .expect("finite high key implies right link"),
                    )
                } else {
                    match &g.children {
                        Children::Leaf(_) => return Arc::clone(&cur),
                        Children::Internal(_) => {
                            stack.push(Arc::clone(&cur));
                            g.child_for(key)
                        }
                    }
                }
            };
            cur = next;
        }
    }

    /// Exclusively latches `start`, chasing right until the node covers
    /// `key`. Returns the guard of the covering node.
    fn latch_covering(&self, start: NodeRef<V>, key: u64) -> WriteGuard<V> {
        let mut cur = start;
        let mut guard = cur.write_arc();
        while !guard.covers(key) {
            let next = Arc::clone(guard.right.as_ref().expect("covers"));
            drop(guard); // at most one latch at a time
            self.note_crossing();
            cur = next;
            guard = cur.write_arc();
        }
        guard
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        let mut stack = Vec::new();
        let leaf = self.descend(key, &mut stack);
        let mut guard = self.latch_covering(leaf, key);
        let old = guard.leaf_insert(key, val);
        if old.is_some() {
            return old;
        }
        self.len.fetch_add(1, Ordering::AcqRel);
        if !guard.overfull(self.cap) {
            return None;
        }
        // Half-split, then post separators upward.
        let (mut sep, mut sib) = guard.half_split(self.sample);
        let mut left = Arc::clone(cbtree_sync::ArcRwLockWriteGuard::rwlock(&guard));
        let mut level = guard.level;
        drop(guard);
        // The sibling is linked and reachable, but its separator is not
        // yet posted in the parent — the Lehman–Yao window every other
        // operation must tolerate via right-link chases.
        cbtree_sync::inject::perturb(cbtree_sync::inject::Site::HalfSplit);
        loop {
            let parent = match stack.pop() {
                Some(p) => p,
                None => {
                    if self.try_grow_root(&left, sep, &sib, level) {
                        return None;
                    }
                    // The tree grew underneath us; find today's ancestor.
                    self.find_level_ancestor(level + 1, sep)
                }
            };
            let mut pg = self.latch_covering(parent, sep);
            debug_assert!(pg.level == level + 1, "ascent hint at wrong level");
            pg.insert_separator(sep, Arc::clone(&sib));
            if !pg.overfull(self.cap) {
                return None;
            }
            let (s, sb) = pg.half_split(self.sample);
            left = Arc::clone(cbtree_sync::ArcRwLockWriteGuard::rwlock(&pg));
            level = pg.level;
            sep = s;
            sib = sb;
            drop(pg);
            // Same unposted-separator window, one level up.
            cbtree_sync::inject::perturb(cbtree_sync::inject::Site::HalfSplit);
        }
    }

    /// Attempts the root swap after splitting what was the root. Returns
    /// `false` when someone else already grew the tree.
    fn try_grow_root(&self, left: &NodeRef<V>, sep: u64, sib: &NodeRef<V>, level: usize) -> bool {
        let mut ptr = self.root.write();
        if Arc::ptr_eq(&ptr, left) {
            *ptr = make_root(
                Arc::clone(left),
                sep,
                Arc::clone(sib),
                level + 1,
                self.sample,
            );
            true
        } else {
            false
        }
    }

    /// Finds the current node at `level` whose range covers `key`
    /// (read descent from the current root; used only in the rare corner
    /// where the root grew while we were splitting the old root).
    fn find_level_ancestor(&self, level: usize, key: u64) -> NodeRef<V> {
        'restart: loop {
            let mut cur: NodeRef<V> = Arc::clone(&self.root.read());
            loop {
                let next = {
                    let g = cur.read();
                    if g.level == level {
                        return Arc::clone(&cur);
                    }
                    if g.level < level {
                        // Another thread split the old root but has not
                        // yet swapped the root pointer, so no node at
                        // `level` is published yet. We hold no latches,
                        // so the grower cannot be waiting on us: spin
                        // until its swap lands.
                        drop(g);
                        std::thread::yield_now();
                        continue 'restart;
                    }
                    if !g.covers(key) {
                        Arc::clone(g.right.as_ref().expect("covers"))
                    } else {
                        g.child_for(key)
                    }
                };
                cur = next;
            }
        }
    }

    /// Removes `key`, returning its value if present. Merge-at-empty with
    /// lazy reclamation: an emptied leaf persists, still linked.
    pub fn remove(&self, key: &u64) -> Option<V> {
        let mut stack = Vec::new();
        let leaf = self.descend(*key, &mut stack);
        let mut guard = self.latch_covering(leaf, *key);
        let old = guard.leaf_remove(*key);
        if old.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        old
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        let mut stack = Vec::new();
        let leaf = self.descend(*key, &mut stack);
        // Shared latch + right chase (reads don't need exclusivity).
        let mut cur = leaf;
        let mut g = cur.read_arc();
        while !g.covers(*key) {
            let next = Arc::clone(g.right.as_ref().expect("covers"));
            drop(g);
            self.note_crossing();
            cur = next;
            g = cur.read_arc();
        }
        g.keys.binary_search(key).is_ok()
    }

    /// Checks structural invariants (quiescent use).
    pub fn check(&self) -> Result<(), String> {
        check_invariants(&self.root.read(), self.cap)
    }

    /// The current root handle (for quiescent instrumentation walks).
    pub fn root_handle(&self) -> NodeRef<V> {
        Arc::clone(&self.root.read())
    }
}

impl<V: Clone> BLinkTree<V> {
    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        let mut stack = Vec::new();
        let leaf = self.descend(*key, &mut stack);
        let mut cur = leaf;
        let mut g = cur.read_arc();
        while !g.covers(*key) {
            let next = Arc::clone(g.right.as_ref().expect("covers"));
            drop(g);
            self.note_crossing();
            cur = next;
            g = cur.read_arc();
        }
        g.leaf_get(*key).cloned()
    }

    /// Ascending range scan over `[lo, hi)`, walking the leaf chain with
    /// one shared latch at a time. The scan is *weakly consistent*: keys
    /// inserted or removed concurrently may or may not be observed, but
    /// every key present for the scan's whole duration is returned
    /// exactly once.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        if lo >= hi {
            return out;
        }
        let mut stack = Vec::new();
        let mut cur = self.descend(lo, &mut stack);
        loop {
            let (right, done) = {
                let g = cur.read_arc();
                if !g.covers(lo) {
                    let next = Arc::clone(g.right.as_ref().expect("covers"));
                    self.note_crossing();
                    (Some(next), false)
                } else {
                    if let Children::Leaf(vals) = &g.children {
                        for (i, &k) in g.keys.iter().enumerate() {
                            if k >= lo && k < hi {
                                out.push((k, vals[i].clone()));
                            }
                        }
                    }
                    let exhausted = g.high.is_none_or(|h| h >= hi);
                    if exhausted {
                        (None, true)
                    } else {
                        (
                            Some(Arc::clone(g.right.as_ref().expect("finite high"))),
                            false,
                        )
                    }
                }
            };
            if done {
                return out;
            }
            cur = right.expect("continue");
        }
    }
}

impl<V> Default for BLinkTree<V> {
    fn default() -> Self {
        BLinkTree::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = BLinkTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0xABCD_EF01_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
            let key = (state >> 33) % 400;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_inserts_all_found() {
        let tree = Arc::new(BLinkTree::new(6));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_500u64 {
                        tree.insert(i * 8 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 20_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            for i in (0..2_500u64).step_by(97) {
                assert_eq!(tree.get(&(i * 8 + t)), Some(t));
            }
        }
    }

    #[test]
    fn concurrent_mixed_conserves_keys() {
        let tree = Arc::new(BLinkTree::new(5));
        for k in (0..8000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 4000);
        tree.check().unwrap();
        for k in 0..8000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_survive_concurrent_splits() {
        let tree = Arc::new(BLinkTree::new(4));
        for k in 0..500u64 {
            tree.insert(k * 100, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                // Dense inserts force many splits in ranges readers scan;
                // odd keys never collide with the readers' even keys.
                for k in 0..20_000u64 {
                    w.insert(2 * k + 1, k);
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..500u64 {
                        assert_eq!(r.get(&(k * 100)), Some(k), "pre-existing key lost");
                    }
                });
            }
        });
        tree.check().unwrap();
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let tree = BLinkTree::new(6);
        for k in 0..1000u64 {
            tree.insert(k, k * 2);
        }
        let got = tree.range(100, 120);
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (100..120).collect::<Vec<_>>());
        assert!(got.iter().all(|&(k, v)| v == k * 2));
        assert!(tree.range(50, 50).is_empty());
        assert!(tree.range(2000, 3000).is_empty());
    }

    #[test]
    fn crossings_occur_under_contention_but_rarely() {
        let tree = Arc::new(BLinkTree::new(4));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    // All threads hammer the same growing region.
                    for i in 0..5_000u64 {
                        tree.insert(i * 8 + t, ());
                    }
                });
            }
        });
        let per_op = tree.crossing_count() as f64 / 40_000.0;
        assert!(per_op < 0.5, "crossings per op {per_op} should be small");
        tree.check().unwrap();
    }

    #[test]
    fn empty_leaves_persist_and_stay_usable() {
        let tree = BLinkTree::new(4);
        for k in 0..100u64 {
            tree.insert(k, k);
        }
        for k in 0..100u64 {
            tree.remove(&k);
        }
        assert!(tree.is_empty());
        for k in 0..100u64 {
            assert!(tree.insert(k, k).is_none());
        }
        assert_eq!(tree.len(), 100);
        tree.check().unwrap();
    }
}
