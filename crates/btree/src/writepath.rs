//! Shared exclusive-descent machinery: the Bayer–Schkolnick write-crabbing
//! path used by [`crate::LockCouplingTree`] directly and by
//! [`crate::OptimisticTree`] as its redo pass, plus the read-crabbing
//! lookup both trees share.

use crate::node::{make_root, Children, Node, NodeRef};
use cbtree_sync::{ArcRwLockReadGuard, ArcRwLockWriteGuard, FcfsRwLock as RwLock, SamplePeriod};
use std::sync::Arc;

pub(crate) type ReadGuard<V> = ArcRwLockReadGuard<Node<V>>;
pub(crate) type WriteGuard<V> = ArcRwLockWriteGuard<Node<V>>;

/// Acquires a read latch on the current root, revalidating that the
/// locked node is still the root (a concurrent root split swings the
/// pointer; descending from a stale root would miss the upper half of the
/// key space in the non-link protocols).
pub(crate) fn lock_root_read<V>(root_ptr: &RwLock<NodeRef<V>>) -> ReadGuard<V> {
    loop {
        let root = Arc::clone(&root_ptr.read());
        let guard = root.read_arc();
        if Arc::ptr_eq(&root, &root_ptr.read()) {
            return guard;
        }
    }
}

/// Acquires a write latch on the current root, with the same validation.
pub(crate) fn lock_root_write<V>(root_ptr: &RwLock<NodeRef<V>>) -> WriteGuard<V> {
    loop {
        let root = Arc::clone(&root_ptr.read());
        let guard = root.write_arc();
        if Arc::ptr_eq(&root, &root_ptr.read()) {
            return guard;
        }
    }
}

/// Read-crabbing lookup: hold the parent's shared latch until the child's
/// is granted.
pub(crate) fn get_coupled<V: Clone>(root_ptr: &RwLock<NodeRef<V>>, key: u64) -> Option<V> {
    let mut guard = lock_root_read(root_ptr);
    loop {
        match &guard.children {
            Children::Leaf(_) => return guard.leaf_get(key).cloned(),
            Children::Internal(_) => {
                let child = guard.child_for(key);
                let child_guard = child.read_arc();
                guard = child_guard; // parent latch released on reassign
            }
        }
    }
}

/// Read-crabbing descent to the leaf *handle* for `key` (the caller
/// re-latches it; used by range scans, which continue along the leaf
/// chain from there).
pub(crate) fn leaf_for<V>(root_ptr: &RwLock<NodeRef<V>>, key: u64) -> NodeRef<V> {
    let mut guard = lock_root_read(root_ptr);
    loop {
        match &guard.children {
            Children::Leaf(_) => {
                return Arc::clone(ArcRwLockReadGuard::rwlock(&guard));
            }
            Children::Internal(_) => {
                let child = guard.child_for(key);
                let child_guard = child.read_arc();
                guard = child_guard;
            }
        }
    }
}

/// Exclusive write-crabbing descent to the leaf for `key`. Retains the
/// latch chain above every node that is unsafe per `is_unsafe`; returns
/// the retained guards (top-first, last is the leaf).
fn descend_exclusive<V>(
    root_ptr: &RwLock<NodeRef<V>>,
    key: u64,
    is_unsafe: impl Fn(&Node<V>) -> bool,
) -> Vec<WriteGuard<V>> {
    let mut held: Vec<WriteGuard<V>> = vec![lock_root_write(root_ptr)];
    loop {
        let child = {
            let top = held.last().expect("chain never empty");
            if top.is_leaf() {
                return held;
            }
            top.child_for(key)
        };
        let child_guard = child.write_arc();
        if !is_unsafe(&child_guard) {
            held.clear(); // child is safe: release every retained ancestor
        }
        held.push(child_guard);
    }
}

/// Full exclusive insert (the Naive Lock-coupling insert; also the
/// Optimistic redo pass). Returns the replaced value, if any. `on_grow`
/// is invoked when a brand-new key was added; `sample` is the tree's
/// stats-sampling period, inherited by any nodes created by splits.
pub(crate) fn insert_exclusive<V>(
    root_ptr: &RwLock<NodeRef<V>>,
    cap: usize,
    key: u64,
    val: V,
    on_grow: impl FnOnce(),
    sample: SamplePeriod,
) -> Option<V> {
    let mut held = descend_exclusive(root_ptr, key, |n| n.insert_unsafe(cap));
    let leaf = held.last_mut().expect("descent reaches a leaf");
    debug_assert!(leaf.covers(key), "coupled descents never go stale");
    let old = leaf.leaf_insert(key, val);
    if old.is_some() {
        return old; // replacement: no growth, no split
    }
    on_grow();
    // Split upward through the retained chain.
    let mut idx = held.len() - 1;
    while held[idx].overfull(cap) {
        let (sep, sib) = held[idx].half_split(sample);
        if idx == 0 {
            // Only the true root can overflow at the chain's top: any
            // other chain top was safe when latched and gained at most
            // one separator.
            let old_root = Arc::clone(ArcRwLockWriteGuard::rwlock(&held[0]));
            let level = held[0].level + 1;
            let new_root = make_root(old_root, sep, sib, level, sample);
            let mut ptr = root_ptr.write();
            debug_assert!(
                Arc::ptr_eq(&ptr, ArcRwLockWriteGuard::rwlock(&held[0])),
                "chain top overflowed but was not the root"
            );
            *ptr = new_root;
            break;
        }
        held[idx - 1].insert_separator(sep, sib);
        idx -= 1;
    }
    None
}

/// Full exclusive remove (merge-at-empty with lazy reclamation: the
/// protocol retains latches above delete-unsafe nodes, but an emptied
/// node simply persists). Returns the removed value.
pub(crate) fn remove_exclusive<V>(
    root_ptr: &RwLock<NodeRef<V>>,
    key: u64,
    on_shrink: impl FnOnce(),
) -> Option<V> {
    let mut held = descend_exclusive(root_ptr, key, |n| n.delete_unsafe());
    let leaf = held.last_mut().expect("descent reaches a leaf");
    let old = leaf.leaf_remove(key);
    if old.is_some() {
        on_shrink();
    }
    old
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::check_invariants;

    fn empty_tree() -> RwLock<NodeRef<u32>> {
        RwLock::new(Node::new_leaf().into_ref())
    }

    #[test]
    fn insert_and_get_sequentially() {
        let root = empty_tree();
        let mut grew = 0;
        for k in 0..500u64 {
            let old =
                insert_exclusive(&root, 8, k * 3, k as u32, || grew += 1, SamplePeriod::EXACT);
            assert!(old.is_none());
        }
        assert_eq!(grew, 500);
        for k in 0..500u64 {
            assert_eq!(get_coupled(&root, k * 3), Some(k as u32));
            assert_eq!(get_coupled(&root, k * 3 + 1), None);
        }
        check_invariants(&root.read(), 8).unwrap();
    }

    #[test]
    fn replacement_returns_old_value() {
        let root = empty_tree();
        insert_exclusive(&root, 8, 7, 1, || {}, SamplePeriod::EXACT);
        let old = insert_exclusive(
            &root,
            8,
            7,
            2,
            || panic!("no growth on replace"),
            SamplePeriod::EXACT,
        );
        assert_eq!(old, Some(1));
        assert_eq!(get_coupled(&root, 7), Some(2));
    }

    #[test]
    fn remove_roundtrip() {
        let root = empty_tree();
        for k in 0..200u64 {
            insert_exclusive(&root, 8, k, k as u32, || {}, SamplePeriod::EXACT);
        }
        let mut shrunk = 0;
        assert_eq!(remove_exclusive(&root, 100, || shrunk += 1), Some(100));
        assert_eq!(remove_exclusive(&root, 100, || shrunk += 1), None);
        assert_eq!(shrunk, 1);
        assert_eq!(get_coupled(&root, 100), None);
        check_invariants(&root.read(), 8).unwrap();
    }

    #[test]
    fn root_grows_through_multiple_levels() {
        let root = empty_tree();
        for k in 0..5000u64 {
            insert_exclusive(&root, 4, k, 0, || {}, SamplePeriod::EXACT);
        }
        let height = root.read().read().level;
        assert!(height >= 5, "height {height}");
        check_invariants(&root.read(), 4).unwrap();
    }
}
