//! The one interface every protocol tree (and test double) speaks.
//!
//! [`ConcurrentMap`] is object-safe so callers that pick a protocol at
//! runtime — the facade, the harness, the checkers' recorders — hold a
//! `Box<dyn ConcurrentMap<V>>` or a generic `M: ConcurrentMap<V>`
//! instead of matching on an enum in every method. Every
//! [`DescentTree`] implements it; so do the checkers' deliberately
//! broken trees.

use crate::batch::{BatchOp, BatchOutcome, BatchSummary};
use crate::counters::OpCountersSnapshot;
use crate::descent::{DescentTree, LatchStrategy};
use crate::node::NodeRef;
use crate::olc::OlcValue;

/// A concurrent ordered map from `u64` keys, with the diagnostic
/// surface the measurement harness and correctness checkers need.
pub trait ConcurrentMap<V>: Send + Sync {
    /// Short protocol name (e.g. `"lock-coupling"`).
    fn protocol_name(&self) -> &'static str;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Whether the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    fn capacity(&self) -> usize;

    /// Current height (levels; 1 = a lone leaf root).
    fn height(&self) -> usize;

    /// Inserts `key → val`; returns the previous value if the key
    /// existed.
    fn insert(&self, key: u64, val: V) -> Option<V>;

    /// Removes `key`, returning its value if present.
    fn remove(&self, key: &u64) -> Option<V>;

    /// Looks `key` up, cloning the value out.
    fn get(&self, key: &u64) -> Option<V>;

    /// Whether `key` is present.
    fn contains_key(&self, key: &u64) -> bool;

    /// Ascending range scan over `[lo, hi)`; weakly consistent under
    /// concurrent updates.
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)>;

    /// Checks structural invariants (quiescent use).
    fn check(&self) -> Result<(), String>;

    /// Snapshot of the root handle (test/diagnostic use).
    fn root_handle(&self) -> NodeRef<V>;

    /// Snapshot of the uniform operation telemetry.
    fn counters(&self) -> OpCountersSnapshot;

    /// Commits the calling thread's transaction, releasing any latches
    /// retained across operations. A no-op for every non-recovery
    /// protocol, so harness workers may call it unconditionally.
    fn txn_commit(&self) {}

    /// Unlinks emptied leaves and recycles their arena slots, returning
    /// the number reclaimed. A no-op (returning 0) for implementations
    /// without slot reclamation, so callers may invoke it
    /// unconditionally.
    fn vacuum(&self) -> usize {
        0
    }

    /// Executes a batch of operations, returning per-operation results
    /// in **submission order** plus descent accounting. The default
    /// executes each operation as its own singleton descent (`descents
    /// == ops`), so trait objects and test doubles inherit correct
    /// semantics for free; [`DescentTree`] overrides it with key-sorted
    /// amortized descent (see [`crate::batch`]).
    fn execute_batch(&self, ops: Vec<BatchOp<V>>) -> BatchOutcome<V> {
        let n = ops.len() as u64;
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            results.push(match op {
                BatchOp::Get(k) => self.get(&k),
                BatchOp::Insert(k, v) => self.insert(k, v),
                BatchOp::Remove(k) => self.remove(&k),
            });
        }
        BatchOutcome {
            results,
            summary: BatchSummary {
                ops: n,
                descents: n,
                ..BatchSummary::default()
            },
        }
    }
}

impl<V, S> ConcurrentMap<V> for DescentTree<V, S>
where
    V: OlcValue + Send + Sync,
    S: LatchStrategy,
{
    fn protocol_name(&self) -> &'static str {
        S::NAME
    }

    fn len(&self) -> usize {
        DescentTree::len(self)
    }

    fn capacity(&self) -> usize {
        DescentTree::capacity(self)
    }

    fn height(&self) -> usize {
        DescentTree::height(self)
    }

    fn insert(&self, key: u64, val: V) -> Option<V> {
        DescentTree::insert(self, key, val)
    }

    fn remove(&self, key: &u64) -> Option<V> {
        DescentTree::remove(self, key)
    }

    fn get(&self, key: &u64) -> Option<V> {
        DescentTree::get(self, key)
    }

    fn contains_key(&self, key: &u64) -> bool {
        DescentTree::contains_key(self, key)
    }

    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        DescentTree::range(self, lo, hi)
    }

    fn check(&self) -> Result<(), String> {
        DescentTree::check(self)
    }

    fn root_handle(&self) -> NodeRef<V> {
        DescentTree::root_handle(self)
    }

    fn counters(&self) -> OpCountersSnapshot {
        self.counters_snapshot()
    }

    fn txn_commit(&self) {
        DescentTree::txn_commit(self)
    }

    fn vacuum(&self) -> usize {
        DescentTree::vacuum(self)
    }

    fn execute_batch(&self, ops: Vec<BatchOp<V>>) -> BatchOutcome<V> {
        DescentTree::execute_batch(self, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockCouplingTree;

    #[test]
    fn trait_object_dispatch_works() {
        let tree: Box<dyn ConcurrentMap<u64>> = Box::new(LockCouplingTree::new(8));
        assert_eq!(tree.protocol_name(), "lock-coupling");
        assert!(tree.is_empty());
        assert_eq!(tree.insert(1, 10), None);
        assert_eq!(tree.insert(1, 20), Some(10));
        assert_eq!(tree.get(&1), Some(20));
        assert!(tree.contains_key(&1));
        assert_eq!(tree.remove(&1), Some(20));
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.capacity(), 8);
        assert!(tree.range(0, 100).is_empty());
        tree.check().unwrap();
        tree.txn_commit(); // no-op on non-recovery trees
        assert_eq!(tree.counters().ops, 6);
    }
}
