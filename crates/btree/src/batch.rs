//! Batched execution: types for the sorted-batch descent entry point.
//!
//! The open-loop service layer drains operations from its ingress ring
//! in batches and hands each batch to
//! [`ConcurrentMap::execute_batch`](crate::map::ConcurrentMap::execute_batch).
//! The engine sorts the batch by key (stable, so same-key operations
//! keep their submission order — the per-key linearizability the batch
//! boundary must not break) and executes it with **amortized descent**:
//! one exclusively latched leaf is held across consecutive operations
//! while their keys stay inside its coverage, hopping the leaf's right
//! link when the next key falls just past the high key, and paying a
//! fresh root-to-leaf descent only on a genuine coverage miss. The
//! [`BatchSummary`] reports how much descent work the batch actually
//! paid, so callers can attribute latches-per-op savings to batching.

/// One operation of a batch, carrying its insert payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp<V> {
    /// Look a key up (result: the value, cloned out).
    Get(u64),
    /// Insert a key (result: the previous value, if the key existed).
    Insert(u64, V),
    /// Remove a key (result: the removed value, if the key existed).
    Remove(u64),
}

impl<V> BatchOp<V> {
    /// The key the operation targets (the batch sort key).
    pub fn key(&self) -> u64 {
        match *self {
            BatchOp::Get(k) | BatchOp::Insert(k, _) | BatchOp::Remove(k) => k,
        }
    }
}

/// Descent accounting for one executed batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Operations executed.
    pub ops: u64,
    /// Fresh root-to-leaf descents paid (including the batch's first).
    pub descents: u64,
    /// Operations served from a leaf the batch already held — either
    /// directly (key within coverage) or via a single right-link hop.
    pub leaf_reuses: u64,
    /// Leaf-level right-link hops taken while holding the previous leaf
    /// (a reuse that crossed into the right sibling).
    pub right_hops: u64,
    /// Inserts that needed a split and fell back to the strategy's
    /// native insert path (each also pays a descent, counted in
    /// `descents`).
    pub fallback_inserts: u64,
}

impl BatchSummary {
    /// Folds another batch's accounting into this one (per-worker and
    /// per-shard aggregation).
    pub fn merge(&mut self, other: &BatchSummary) {
        self.ops += other.ops;
        self.descents += other.descents;
        self.leaf_reuses += other.leaf_reuses;
        self.right_hops += other.right_hops;
        self.fallback_inserts += other.fallback_inserts;
    }
}

/// Per-operation results (submission order) plus descent accounting.
#[derive(Debug)]
pub struct BatchOutcome<V> {
    /// `results[i]` is operation `i`'s result in **submission order**
    /// (what the singleton call would have returned), regardless of the
    /// key-sorted execution order.
    pub results: Vec<Option<V>>,
    /// Descent accounting for the batch.
    pub summary: BatchSummary,
}

impl<V> BatchOutcome<V> {
    /// An empty outcome (the empty batch).
    pub fn empty() -> Self {
        BatchOutcome {
            results: Vec::new(),
            summary: BatchSummary::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_op_keys_and_summary_merge() {
        assert_eq!(BatchOp::<u64>::Get(7).key(), 7);
        assert_eq!(BatchOp::Insert(8, 1u64).key(), 8);
        assert_eq!(BatchOp::<u64>::Remove(9).key(), 9);
        let mut a = BatchSummary {
            ops: 3,
            descents: 1,
            leaf_reuses: 2,
            right_hops: 1,
            fallback_inserts: 0,
        };
        let b = BatchSummary {
            ops: 2,
            descents: 2,
            leaf_reuses: 0,
            right_hops: 0,
            fallback_inserts: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            BatchSummary {
                ops: 5,
                descents: 3,
                leaf_reuses: 2,
                right_hops: 1,
                fallback_inserts: 1,
            }
        );
    }
}
