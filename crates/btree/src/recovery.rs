//! The paper's §6/§7 recovery application: lock-coupling trees whose
//! exclusive latches outlive the operation.
//!
//! When B-tree operations run inside transactions that must be able to
//! roll back, an updated node cannot be exposed until the transaction
//! commits. The paper models two retention policies on top of the Naive
//! Lock-coupling descent:
//!
//! * **Naive recovery** ([`RecoveryNaiveTree`]) — every exclusive latch
//!   still held when the operation finishes (the retained unsafe chain)
//!   stays held until [`txn_commit`](crate::DescentTree::txn_commit).
//! * **Leaf-only recovery** ([`RecoveryLeafTree`]) — only the leaf's
//!   exclusive latch is retained to commit; restructuring latches
//!   release at operation end (undo of a structure change is handled
//!   separately, e.g. by logging, so only the data page stays locked).
//!
//! Callers drive transaction boundaries explicitly: perform `k`
//! operations, then call `txn_commit()`. With `k = 1` both variants
//! degenerate to plain lock-coupling plus commit bookkeeping. Deadlock
//! freedom comes from the engine's probe-and-spill discipline (see
//! [`crate::descent`]): a thread holding retained latches never blocks,
//! and spills (early-commits) its latches when a probe fails.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, TxnRetention, UpdatePolicy};

/// Naive recovery: retain every exclusive latch to transaction commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryNaiveStrategy;

impl LatchStrategy for RecoveryNaiveStrategy {
    const NAME: &'static str = "recovery-naive";
    const READ: ReadPolicy = ReadPolicy::Crab;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: false };
    const TXN: TxnRetention = TxnRetention::All;
}

/// Leaf-only recovery: retain just the leaf latch to transaction commit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryLeafStrategy;

impl LatchStrategy for RecoveryLeafStrategy {
    const NAME: &'static str = "recovery-leaf";
    const READ: ReadPolicy = ReadPolicy::Crab;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: false };
    const TXN: TxnRetention = TxnRetention::Leaf;
}

/// Lock-coupling tree with naive (retain-all) transaction recovery.
pub type RecoveryNaiveTree<V> = DescentTree<V, RecoveryNaiveStrategy>;

/// Lock-coupling tree with leaf-only transaction recovery.
pub type RecoveryLeafTree<V> = DescentTree<V, RecoveryLeafStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn txn1_matches_std_btreemap() {
        // Commit after every op: behaves exactly like lock-coupling.
        let tree = RecoveryNaiveTree::new(6);
        let mut model = BTreeMap::new();
        let mut state = 0x5EC0_4E41_u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            let key = (state >> 33) % 300;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            tree.txn_commit();
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_transactions_make_progress() {
        // Transactions of 8 updates over overlapping key ranges: the
        // probe-and-spill discipline must keep every thread live.
        let tree = Arc::new(RecoveryNaiveTree::new(5));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        tree.insert(i * 4 + t, t);
                        if i % 8 == 7 {
                            tree.txn_commit();
                        }
                    }
                    tree.txn_commit();
                });
            }
        });
        assert_eq!(tree.len(), 4000);
        tree.check().unwrap();
    }

    #[test]
    fn leaf_variant_concurrent_transactions() {
        let tree = Arc::new(RecoveryLeafTree::new(5));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        tree.insert(i * 4 + t, t);
                        if i % 4 == 3 {
                            tree.txn_commit();
                        }
                    }
                    tree.txn_commit();
                });
            }
        });
        assert_eq!(tree.len(), 4000);
        tree.check().unwrap();
        let snap = tree.counters_snapshot();
        assert!(snap.txn_commits > 0);
    }
}
