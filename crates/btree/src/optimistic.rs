//! The Optimistic Descent tree (Bayer–Schkolnick).
//!
//! Updates gamble that the leaf will be safe: the first pass descends
//! with shared latches (read-crabbing) and takes an exclusive latch only
//! on the leaf, acquired while still holding the parent's shared latch.
//! If the leaf turns out to be unsafe, everything is released and the
//! operation redoes itself as a full exclusive descent — exactly the
//! Naive Lock-coupling write path, shared with `LockCouplingTree`.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// The Optimistic Descent strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimisticStrategy;

impl LatchStrategy for OptimisticStrategy {
    const NAME: &'static str = "optimistic";
    const READ: ReadPolicy = ReadPolicy::Crab;
    const UPDATE: UpdatePolicy = UpdatePolicy::OptimisticLeaf;
}

/// A concurrent B+-tree using optimistic descent.
pub type OptimisticTree<V> = DescentTree<V, OptimisticStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = OptimisticTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0xDEAD_BEEF_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = (state >> 33) % 400;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn redos_happen_but_rarely() {
        let tree = OptimisticTree::new(13);
        for k in 0..20_000u64 {
            tree.insert(k.wrapping_mul(0x9E37_79B9) % 1_000_000, k);
        }
        let redo_rate = tree.redo_count() as f64 / 20_000.0;
        assert!(tree.redo_count() > 0, "some leaves must have been full");
        assert!(redo_rate < 0.25, "redo rate {redo_rate} too high");
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let tree = Arc::new(OptimisticTree::new(7));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(i * 8 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_mixed_conserves_keys() {
        let tree = Arc::new(OptimisticTree::new(5));
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
        tree.check().unwrap();
    }

    #[test]
    fn grows_from_leaf_root_under_contention() {
        // Exercises the root-is-leaf first-pass path racing root growth.
        let tree = Arc::new(OptimisticTree::new(3));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..500u64 {
                        tree.insert(i * 4 + t, ());
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        assert!(tree.height() > 2);
        tree.check().unwrap();
    }
}
