//! The Optimistic Descent tree (Bayer–Schkolnick).
//!
//! Updates gamble that the leaf will be safe: the first pass descends
//! with shared latches (read-crabbing) and takes an exclusive latch only
//! on the leaf, acquired while still holding the parent's shared latch.
//! If the leaf turns out to be unsafe, everything is released and the
//! operation redoes itself as a full exclusive descent — exactly the
//! Naive Lock-coupling write path, shared with `LockCouplingTree`.

use crate::node::{check_invariants, Node, NodeRef};
use crate::writepath::{self, WriteGuard};
use cbtree_sync::{FcfsRwLock as RwLock, SamplePeriod};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent B+-tree using optimistic descent.
#[derive(Debug)]
pub struct OptimisticTree<V> {
    root: RwLock<NodeRef<V>>,
    cap: usize,
    len: AtomicUsize,
    redos: AtomicU64,
    sample: SamplePeriod,
}

impl<V> OptimisticTree<V> {
    /// Creates an empty tree with at most `capacity` keys per node and
    /// exact lock timing.
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn new(capacity: usize) -> Self {
        OptimisticTree::with_sampling(capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact).
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn with_sampling(capacity: usize, sample: SamplePeriod) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        OptimisticTree {
            root: RwLock::new(Node::new_leaf().into_ref_sampled(sample)),
            cap: capacity,
            len: AtomicUsize::new(0),
            redos: AtomicU64::new(0),
            sample,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current height (levels).
    pub fn height(&self) -> usize {
        self.root.read().read().level
    }

    /// How many updates had to redo with a full exclusive descent — the
    /// statistic the paper's analysis predicts as `q_i·Pr[F(1)]` per
    /// operation.
    pub fn redo_count(&self) -> u64 {
        self.redos.load(Ordering::Relaxed)
    }

    /// First optimistic pass: read-crab to the leaf's parent, then take
    /// the leaf's exclusive latch while still holding the parent's shared
    /// latch. Returns the exclusively latched leaf.
    fn first_pass_leaf(&self, key: u64) -> WriteGuard<V> {
        loop {
            // Root cases need pointer revalidation after latching.
            let root = Arc::clone(&self.root.read());
            if root.read().is_leaf() {
                let guard = root.write_arc();
                if Arc::ptr_eq(&root, &self.root.read()) && guard.is_leaf() {
                    return guard;
                }
                continue; // root split under us: retry
            }
            let guard = root.read_arc();
            if !Arc::ptr_eq(&root, &self.root.read()) {
                continue;
            }
            // Descend with shared crabbing; exclusive-latch the leaf.
            let mut parent = guard;
            loop {
                let child = parent.child_for(key);
                if parent.level == 2 {
                    let leaf = child.write_arc();
                    debug_assert!(leaf.is_leaf());
                    return leaf; // parent shared latch drops here
                }
                let child_guard = child.read_arc();
                parent = child_guard;
            }
        }
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        {
            let mut leaf = self.first_pass_leaf(key);
            debug_assert!(leaf.covers(key));
            let exists = leaf.keys.binary_search(&key).is_ok();
            if exists || !leaf.insert_unsafe(self.cap) {
                let old = leaf.leaf_insert(key, val);
                if old.is_none() {
                    self.len.fetch_add(1, Ordering::AcqRel);
                }
                return old;
            }
            // Unsafe leaf: release and redo pessimistically.
        }
        self.redos.fetch_add(1, Ordering::Relaxed);
        writepath::insert_exclusive(
            &self.root,
            self.cap,
            key,
            val,
            || {
                self.len.fetch_add(1, Ordering::AcqRel);
            },
            self.sample,
        )
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &u64) -> Option<V> {
        {
            let mut leaf = self.first_pass_leaf(*key);
            if !leaf.delete_unsafe() {
                let old = leaf.leaf_remove(*key);
                if old.is_some() {
                    self.len.fetch_sub(1, Ordering::AcqRel);
                }
                return old;
            }
        }
        self.redos.fetch_add(1, Ordering::Relaxed);
        writepath::remove_exclusive(&self.root, *key, || {
            self.len.fetch_sub(1, Ordering::AcqRel);
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        let mut guard = writepath::lock_root_read(&self.root);
        loop {
            if guard.is_leaf() {
                return guard.keys.binary_search(key).is_ok();
            }
            let child = guard.child_for(*key);
            let child_guard = child.read_arc();
            guard = child_guard;
        }
    }

    /// Checks structural invariants (quiescent use).
    pub fn check(&self) -> Result<(), String> {
        check_invariants(&self.root.read(), self.cap)
    }

    /// The current root handle (for quiescent instrumentation walks).
    pub fn root_handle(&self) -> NodeRef<V> {
        Arc::clone(&self.root.read())
    }
}

impl<V: Clone> OptimisticTree<V> {
    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        writepath::get_coupled(&self.root, *key)
    }

    /// Ascending range scan over `[lo, hi)` via the leaf chain, one
    /// shared latch at a time. Weakly consistent under concurrent
    /// updates (see [`crate::node::collect_range`]).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        if lo < hi {
            let leaf = crate::writepath::leaf_for(&self.root, lo);
            crate::node::collect_range(leaf, lo, hi, &mut out);
        }
        out
    }
}

impl<V> Default for OptimisticTree<V> {
    fn default() -> Self {
        OptimisticTree::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = OptimisticTree::new(5);
        let mut model = BTreeMap::new();
        let mut state = 0xDEAD_BEEF_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let key = (state >> 33) % 400;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn redos_happen_but_rarely() {
        let tree = OptimisticTree::new(13);
        for k in 0..20_000u64 {
            tree.insert(k.wrapping_mul(0x9E37_79B9) % 1_000_000, k);
        }
        let redo_rate = tree.redo_count() as f64 / 20_000.0;
        assert!(tree.redo_count() > 0, "some leaves must have been full");
        assert!(redo_rate < 0.25, "redo rate {redo_rate} too high");
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_inserts_from_many_threads() {
        let tree = Arc::new(OptimisticTree::new(7));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(i * 8 + t, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_mixed_conserves_keys() {
        let tree = Arc::new(OptimisticTree::new(5));
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
        tree.check().unwrap();
    }

    #[test]
    fn grows_from_leaf_root_under_contention() {
        // Exercises the root-is-leaf first-pass path racing root growth.
        let tree = Arc::new(OptimisticTree::new(3));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..500u64 {
                        tree.insert(i * 4 + t, ());
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        assert!(tree.height() > 2);
        tree.check().unwrap();
    }
}
