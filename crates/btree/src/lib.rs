//! Real in-memory concurrent B+-trees implementing the three algorithms
//! of Johnson & Shasha (PODS 1990), usable as an ordinary concurrent
//! ordered map from `u64` keys to arbitrary values.
//!
//! Every protocol is a thin [`descent::LatchStrategy`] over one generic
//! engine ([`descent::DescentTree`]) — same node representation, same
//! split/merge machinery, differing only in latching discipline:
//!
//! * [`LockCouplingTree`] — Naive Lock-coupling (Bayer–Schkolnick):
//!   readers crab with shared latches; updaters crab with exclusive
//!   latches, retaining the latch chain above any node that might
//!   restructure.
//! * [`OptimisticTree`] — Optimistic Descent: updates descend like
//!   readers and exclusively latch only the leaf; when the leaf is unsafe
//!   the operation restarts as a full exclusive descent.
//! * [`BLinkTree`] — the Link-type algorithm (Lehman–Yao): every node
//!   carries a high key and a right link; operations hold **at most one
//!   latch at a time** and recover from concurrent splits by chasing
//!   right links.
//! * [`OlcTree`] — Optimistic Lock Coupling (the ROADMAP's fourth,
//!   post-1990 protocol): readers take **no latches at all**, instead
//!   validating each node's packed lock-word version counter
//!   hand-over-hand and restarting from the deepest still-valid
//!   ancestor on a mismatch; writers latch as in lock-coupling.
//! * [`TwoPhaseTree`] — the strict-2PL baseline the paper compares
//!   against.
//! * [`RecoveryNaiveTree`] / [`RecoveryLeafTree`] — the §6/§7 recovery
//!   application: lock-coupling with exclusive latches retained (all of
//!   them, or the leaf's only) until an explicit transaction commit.
//!
//! All trees are merge-at-empty with lazy reclamation (a node that loses
//! its last key remains linked; §3.2 of the paper argues merge-at-empty
//! is the right policy for concurrent B-trees, and with insert-dominated
//! mixes empties are rare). Every tree counts latch acquisitions per
//! level, optimistic restarts, right-link chases, and peak latch-chain
//! depth into an [`OpCounters`] snapshot the measurement harness surfaces
//! next to the lock-utilisation statistics.
//!
//! # Example
//!
//! ```
//! use cbtree_btree::{BLinkTree, ConcurrentBTree, Protocol};
//! use std::sync::Arc;
//!
//! let tree: Arc<BLinkTree<String>> = Arc::new(BLinkTree::new(64));
//! std::thread::scope(|s| {
//!     for t in 0..4 {
//!         let tree = Arc::clone(&tree);
//!         s.spawn(move || {
//!             for i in 0..1000u64 {
//!                 tree.insert(t * 1000 + i, format!("v{i}"));
//!             }
//!         });
//!     }
//! });
//! assert_eq!(tree.len(), 4000);
//! assert_eq!(tree.get(&2999).as_deref(), Some("v999"));
//!
//! // Or pick the protocol dynamically:
//! let any = ConcurrentBTree::new(Protocol::LockCoupling, 32);
//! any.insert(1, 10u64);
//! assert_eq!(any.get(&1), Some(10));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
pub mod batch;
pub mod blink;
pub mod counters;
pub mod coupling;
pub mod descent;
pub mod facade;
pub mod map;
pub mod node;
pub mod olc;
pub mod optimistic;
pub mod recovery;
pub mod two_phase;

pub use arena::{Arena, NodeId, NodeRef};
pub use batch::{BatchOp, BatchOutcome, BatchSummary};
pub use blink::{BLinkStrategy, BLinkTree};
pub use counters::{OpCounters, OpCountersSnapshot};
pub use coupling::{LockCouplingStrategy, LockCouplingTree};
pub use descent::{DescentTree, LatchStrategy, ReadPolicy, TxnRetention, UpdatePolicy};
pub use facade::{ConcurrentBTree, Protocol};
pub use map::ConcurrentMap;
pub use olc::{OlcStrategy, OlcTree, OlcValue};
pub use optimistic::{OptimisticStrategy, OptimisticTree};
pub use recovery::{
    RecoveryLeafStrategy, RecoveryLeafTree, RecoveryNaiveStrategy, RecoveryNaiveTree,
};
pub use two_phase::{TwoPhaseStrategy, TwoPhaseTree};
