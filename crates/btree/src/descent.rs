//! The protocol-strategy descent engine.
//!
//! Every latching protocol in this crate is the *same* B+-tree — shared
//! [`Node`] representation in a slab [`Arena`], Lehman–Yao metadata on
//! every node, merge-at-empty deletes — differing only in **how it
//! latches on the way down**: which mode, when a retained ancestor chain
//! is released, when an operation restarts, and how a traversal recovers
//! from a node that no longer covers its key. [`LatchStrategy`] captures
//! exactly those choices as associated constants, and [`DescentTree`] is
//! the one generic engine implementing `get`/`insert`/`remove`/`range`
//! for every strategy:
//!
//! * [`ReadPolicy::Crab`] — shared crabbing (child latched before the
//!   parent releases); [`ReadPolicy::RetainAll`] — strict 2PL, every
//!   shared latch held to completion; [`ReadPolicy::Link`] — at most one
//!   latch, right-link chases on non-covering nodes; [`ReadPolicy::Olc`]
//!   — optimistic lock coupling, **zero** reader latches: descents
//!   snapshot each node's version counter, read without latching,
//!   validate parent-then-child, and restart from the deepest
//!   still-valid ancestor on a mismatch.
//! * [`UpdatePolicy::Crab`] — exclusive crabbing, either releasing the
//!   retained chain above *safe* children (`retain_all: false`, the
//!   Bayer–Schkolnick write path) or never releasing (`retain_all:
//!   true`, the Two-Phase baseline); [`UpdatePolicy::OptimisticLeaf`] —
//!   shared descent + exclusive leaf, restarting as an exclusive crab
//!   when the leaf is unsafe; [`UpdatePolicy::Link`] — Lehman–Yao
//!   half-split with separators posted upward under one latch at a time.
//! * [`TxnRetention`] — the paper's §7 recovery variants: exclusive
//!   latches survive the operation and are held until
//!   [`DescentTree::txn_commit`], either the whole retained chain
//!   (`All`, "naive" recovery) or the leaf only (`Leaf`).
//!
//! The engine also owns the uniform telemetry ([`OpCounters`]): latch
//! acquisitions per level and mode, optimistic restarts, right-link
//! chases, peak latch-chain depth, and transaction commits/spills.
//!
//! # Slot recycling and stale handles
//!
//! Emptied leaves persist, still linked, until an explicit
//! [`DescentTree::vacuum`] unlinks them and returns their arena slots to
//! the free list. Latched coupled descents can never observe a recycled
//! slot (a child is resolved under its parent's latch, and vacuum holds
//! the parent exclusively before freeing a child), so only the paths
//! that cross an **unlatched window** re-check the handle generation:
//! the OLC descent (after version validation), the latched chase after
//! an OLC locator, and the leaf-chain hops of range scans. A stale
//! handle restarts the affected step; see [`crate::arena`] for why the
//! generation check must follow, not precede, version validation.
//!
//! # Deadlock freedom with retained transaction latches
//!
//! A thread holding retained exclusive latches from earlier operations
//! of its transaction must never *block* on a latch (another thread —
//! possibly blocked on one of ours — may hold it, and FCFS latches are
//! not recursive, so we could even block on ourselves). While any
//! retained guard exists, every latch acquisition therefore goes through
//! the non-blocking fast-path probe ([`NodeRef::try_read_guard`] /
//! [`NodeRef::try_write_guard`]); on the first refusal the engine
//! *spills* — releases every retained guard (an early commit, counted in
//! [`OpCountersSnapshot::txn_spills`]) — and redoes the descent in
//! ordinary blocking mode, which is safe because the thread then holds
//! nothing across operations. With transaction size 1 a commit follows
//! every operation, nothing is ever retained, and the recovery variants
//! behave (and perform) exactly like their underlying protocol plus
//! bookkeeping.

use crate::arena::{Arena, NodeId, NodeRef, MAX_CAP};
use crate::batch::{BatchOp, BatchOutcome, BatchSummary};
use crate::counters::{OpCounters, OpCountersSnapshot};
use crate::node::{check_invariants, collect_range, make_root, split_node, Children, Node};
use crate::olc::OlcValue;
use cbtree_sync::SamplePeriod;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread::{self, ThreadId};

pub(crate) use crate::arena::{ReadGuard, WriteGuard};

/// How a strategy latches on the way down for read-only operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Shared crabbing: the child is latched before the parent releases.
    Crab,
    /// Strict 2PL: every shared latch is retained until the operation
    /// completes.
    RetainAll,
    /// Lehman–Yao: at most one shared latch at a time; non-covering
    /// nodes are recovered from by chasing right links.
    Link,
    /// Optimistic lock coupling: readers take **no latches at all**.
    /// Each node visit snapshots the node's lock-word version counter,
    /// reads the node unlatched, and validates the version afterwards
    /// (hand-over-hand: the parent is re-validated after the child's
    /// read window closes). A failed validation restarts the descent
    /// from the deepest recorded ancestor whose version still holds;
    /// non-covering nodes are recovered from by chasing right links, as
    /// in [`ReadPolicy::Link`].
    Olc,
}

/// How a strategy latches for updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Exclusive crabbing to the leaf. With `retain_all: false` the
    /// retained ancestor chain is released whenever a newly latched
    /// child is *safe* (cannot split / cannot empty); with `retain_all:
    /// true` every latch is held to completion (the Two-Phase baseline).
    Crab {
        /// Never release ancestors (strict 2PL) instead of releasing
        /// above safe children.
        retain_all: bool,
    },
    /// First pass descends shared and exclusively latches only the leaf
    /// (acquired under the parent's shared latch); an unsafe leaf
    /// restarts the operation as an exclusive crab — counted as an
    /// optimistic *restart*.
    OptimisticLeaf,
    /// Lehman–Yao: one exclusive latch at a time; splits are
    /// half-splits whose separators are posted upward afterwards.
    Link,
}

/// Whether exclusive latches outlive the operation, per the paper's §7
/// recovery application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnRetention {
    /// Latches release at operation end (all non-recovery protocols).
    None,
    /// The leaf's exclusive latch is retained until
    /// [`DescentTree::txn_commit`].
    Leaf,
    /// Every exclusive latch still held at operation end is retained
    /// until [`DescentTree::txn_commit`] ("naive" recovery).
    All,
}

/// A latching protocol, described declaratively. The descent engine
/// interprets these constants; a strategy carries no state and no code.
pub trait LatchStrategy: Send + Sync + 'static {
    /// Short protocol name (matches `Protocol::name()` for the facade's
    /// protocols).
    const NAME: &'static str;
    /// Read-side latching discipline.
    const READ: ReadPolicy;
    /// Update-side latching discipline.
    const UPDATE: UpdatePolicy;
    /// Transaction-scoped latch retention (recovery variants only).
    const TXN: TxnRetention = TxnRetention::None;
}

/// A concurrent B+-tree generic over its latching strategy.
///
/// All protocol trees in this crate are type aliases of this engine —
/// e.g. `LockCouplingTree<V> = DescentTree<V, LockCouplingStrategy>`.
pub struct DescentTree<V, S: LatchStrategy> {
    /// Node storage: every node of this tree lives in one slab arena.
    arena: Arena<V>,
    /// The root's packed [`NodeId`] (root nodes are never recycled, so
    /// the word is ABA-free; swings use compare-exchange).
    root: AtomicU64,
    cap: usize,
    len: AtomicUsize,
    counters: OpCounters,
    /// Exclusive guards retained across operations by transaction
    /// (recovery strategies only; keyed by owning thread). A thread only
    /// ever touches its own entry.
    retained: Mutex<HashMap<ThreadId, Vec<WriteGuard<V>>>>,
    /// Serializes [`DescentTree::vacuum`] passes (one reclaimer at a
    /// time keeps the latch-order argument two-party: vacuum vs.
    /// ordinary descents).
    vacuum_serial: Mutex<()>,
    _strategy: PhantomData<fn() -> S>,
}

impl<V, S: LatchStrategy> fmt::Debug for DescentTree<V, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DescentTree")
            .field("strategy", &S::NAME)
            .field("capacity", &self.cap)
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<V, S: LatchStrategy> Default for DescentTree<V, S> {
    fn default() -> Self {
        DescentTree::new(32)
    }
}

impl<V, S: LatchStrategy> DescentTree<V, S> {
    /// Creates an empty tree with at most `capacity` keys per node and
    /// exact lock timing.
    ///
    /// # Panics
    /// Panics when `capacity < 3` or `capacity > MAX_CAP`.
    pub fn new(capacity: usize) -> Self {
        DescentTree::with_sampling(capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact).
    ///
    /// # Panics
    /// Panics when `capacity < 3` or `capacity > MAX_CAP`.
    pub fn with_sampling(capacity: usize, sample: SamplePeriod) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        assert!(
            capacity <= MAX_CAP,
            "node capacity must be at most {MAX_CAP} (inline array bound)"
        );
        let arena = Arena::new(sample);
        let first_leaf = arena.alloc(Node::new_leaf_for(capacity));
        DescentTree {
            root: AtomicU64::new(first_leaf.id().to_bits()),
            arena,
            cap: capacity,
            len: AtomicUsize::new(0),
            counters: OpCounters::default(),
            retained: Mutex::new(HashMap::new()),
            vacuum_serial: Mutex::new(()),
            _strategy: PhantomData,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current root's id.
    fn root_id(&self) -> NodeId {
        NodeId::from_bits(self.root.load(Ordering::Acquire))
    }

    /// A handle to the current root.
    fn root_ref(&self) -> NodeRef<V> {
        self.arena.at(self.root_id())
    }

    /// This tree's node arena (diagnostic/test use: allocation and
    /// recycling totals).
    pub fn arena(&self) -> &Arena<V> {
        &self.arena
    }

    /// Current height (levels; 1 = a lone leaf root). Reads the root's
    /// level optimistically so metadata queries between measurement
    /// snapshots never show up as reader latch traffic; falls back to a
    /// latched read only when a writer holds the root.
    #[allow(unsafe_code)]
    pub fn height(&self) -> usize {
        let root = self.root_ref();
        // SAFETY: the window closure copies out the POD `usize` level —
        // no heap, no indexing — so a torn read is at worst a wrong
        // value, discarded on failed validation.
        match unsafe { root.read_optimistic(|n| n.level) } {
            Some((_, level)) => level,
            None => root.read().level,
        }
    }

    /// The engine's uniform operation telemetry.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Snapshot of the operation telemetry.
    pub fn counters_snapshot(&self) -> OpCountersSnapshot {
        self.counters.snapshot()
    }

    /// How many updates restarted as a full exclusive descent (the
    /// Optimistic statistic the paper predicts as `q_i·Pr[F(1)]` per
    /// operation; 0 for strategies that never restart).
    pub fn redo_count(&self) -> u64 {
        self.counters.restarts()
    }

    /// Total right-link chases performed by all operations so far — the
    /// statistic behind the paper's Figure 9 (link crossing is rare; 0
    /// for the non-link strategies, which never go stale).
    pub fn crossing_count(&self) -> u64 {
        self.counters.chases()
    }

    /// Checks structural invariants (intended for quiescent moments in
    /// tests; concurrent mutation may produce spurious reports).
    pub fn check(&self) -> Result<(), String> {
        check_invariants(&self.root_ref(), self.cap)
    }

    /// Snapshot of the root handle (test/diagnostic use).
    pub fn root_handle(&self) -> NodeRef<V> {
        self.root_ref()
    }

    /// Commits the calling thread's transaction: releases every
    /// exclusive latch retained by the recovery strategies. A no-op (not
    /// even counted) for strategies without transaction retention.
    ///
    /// Threads running against a recovery-variant tree **must** commit
    /// before exiting or quiescing: latches retained by a parked or dead
    /// thread block every other operation that reaches those nodes.
    pub fn txn_commit(&self) {
        if matches!(S::TXN, TxnRetention::None) {
            return;
        }
        let guards = self
            .retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&thread::current().id());
        drop(guards); // latches release outside the map mutex
        self.counters.record_txn_commit();
    }

    /// Whether the calling thread holds retained transaction latches —
    /// if so, every acquisition must be a non-blocking probe.
    fn must_probe(&self) -> bool {
        if matches!(S::TXN, TxnRetention::None) {
            return false;
        }
        self.retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&thread::current().id())
            .is_some_and(|v| !v.is_empty())
    }

    /// Releases the calling thread's retained latches early (deadlock
    /// avoidance — counted as a spill, i.e. a forced early commit).
    fn txn_spill(&self) {
        let guards = self
            .retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&thread::current().id());
        if guards.is_some_and(|g| {
            let held = !g.is_empty();
            drop(g);
            held
        }) {
            self.counters.record_txn_spill();
        }
    }

    /// Moves the exclusive guards a finished update still holds into the
    /// transaction-retention set, per `S::TXN`.
    fn txn_retain(&self, mut held: Vec<WriteGuard<V>>) {
        let keep = match S::TXN {
            TxnRetention::None => return,
            TxnRetention::Leaf => {
                let leaf = held.pop().expect("descent reaches a leaf");
                drop(held); // internal latches release now
                vec![leaf]
            }
            TxnRetention::All => held,
        };
        self.retained
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(thread::current().id())
            .or_default()
            .extend(keep);
    }

    // ------------------------------------------------------------------
    // Latch acquisition (counted; optionally non-blocking).
    // ------------------------------------------------------------------

    /// Shared latch on `node`; `None` only in probe mode.
    fn latch_read(&self, node: &NodeRef<V>, probe: bool) -> Option<ReadGuard<V>> {
        let g = if probe {
            node.try_read_guard()?
        } else {
            node.read_guard()
        };
        self.counters.record_latch(g.level, false);
        Some(g)
    }

    /// Exclusive latch on `node`; `None` only in probe mode.
    fn latch_write(&self, node: &NodeRef<V>, probe: bool) -> Option<WriteGuard<V>> {
        let g = if probe {
            node.try_write_guard()?
        } else {
            node.write_guard()
        };
        self.counters.record_latch(g.level, true);
        Some(g)
    }

    /// Latches the current root shared, revalidating that the locked
    /// node is still the root (a concurrent root split swings the id;
    /// descending from a stale root would miss the upper half of the key
    /// space in the non-link protocols). Root slots are never recycled,
    /// so id equality is exact identity.
    fn lock_root_read(&self, probe: bool) -> Option<ReadGuard<V>> {
        loop {
            let root = self.root_ref();
            let guard = self.latch_read(&root, probe)?;
            if guard.id() == self.root_id() {
                return Some(guard);
            }
        }
    }

    /// Latches the current root exclusively, with the same validation.
    fn lock_root_write(&self, probe: bool) -> Option<WriteGuard<V>> {
        loop {
            let root = self.root_ref();
            let guard = self.latch_write(&root, probe)?;
            if guard.id() == self.root_id() {
                return Some(guard);
            }
        }
    }

    // ------------------------------------------------------------------
    // Read descents.
    // ------------------------------------------------------------------

    /// Shared-crab descent to the leaf covering `key` (the parent's
    /// latch is held until the child's is granted). `None` only in probe
    /// mode.
    fn crab_read_leaf(&self, key: u64, probe: bool) -> Option<ReadGuard<V>> {
        let mut guard = self.lock_root_read(probe)?;
        loop {
            if guard.is_leaf() {
                return Some(guard);
            }
            let child = guard.at(guard.child_for(key));
            let child_guard = self.latch_read(&child, probe)?;
            guard = child_guard; // parent latch releases on reassign
        }
    }

    /// Read descent per `S::READ`, yielding the shared-latched leaf for
    /// `key` plus — for [`ReadPolicy::RetainAll`] — the retained
    /// ancestor guards that must stay alive alongside it. Handles probe
    /// mode (and the spill-and-retry it implies) internally.
    fn read_leaf(&self, key: u64) -> (ReadGuard<V>, Vec<ReadGuard<V>>) {
        match S::READ {
            ReadPolicy::Crab => {
                let leaf = if self.must_probe() {
                    match self.crab_read_leaf(key, true) {
                        Some(leaf) => leaf,
                        None => {
                            self.txn_spill();
                            self.crab_read_leaf(key, false).expect("blocking descent")
                        }
                    }
                } else {
                    self.crab_read_leaf(key, false).expect("blocking descent")
                };
                (leaf, Vec::new())
            }
            ReadPolicy::RetainAll => {
                let mut held = vec![self.lock_root_read(false).expect("blocking")];
                loop {
                    let top = held.last().expect("non-empty");
                    if top.is_leaf() {
                        self.counters.note_chain_depth(held.len());
                        let leaf = held.pop().expect("non-empty");
                        return (leaf, held);
                    }
                    let child = top.at(top.child_for(key));
                    let g = self.latch_read(&child, false).expect("blocking");
                    held.push(g);
                }
            }
            ReadPolicy::Link => {
                let leaf = self.link_descend(key, None);
                let mut cur = leaf;
                let mut g = self.latch_read(&cur, false).expect("blocking");
                while !g.covers(key) {
                    let next = g.right.expect("covers");
                    drop(g); // at most one latch at a time
                    self.counters.record_chase();
                    cur.goto(next);
                    g = self.latch_read(&cur, false).expect("blocking");
                }
                self.counters.note_chain_depth(1);
                (g, Vec::new())
            }
            // OLC reads never produce a latch guard; `get`/`contains_key`
            // divert to `olc_descend` before reaching here.
            ReadPolicy::Olc => unreachable!("OLC reads are latch-free"),
        }
    }

    // ------------------------------------------------------------------
    // The optimistic-lock-coupling (OLC) read descent.
    // ------------------------------------------------------------------

    /// Latch-free descent to the leaf covering `key`, returning the
    /// leaf's handle and the result of `leaf_read` applied to it inside
    /// a validated read window.
    ///
    /// Each node visit is one
    /// [`read_optimistic`](cbtree_sync::FcfsRwLock::read_optimistic)
    /// window: snapshot the version, read the node unlatched, validate.
    /// The descent is hand-over-hand in versions instead of latches —
    /// after a child's window closes, the parent's recorded version is
    /// **re-validated** (`validate`), proving the routing decision that
    /// led to the child was still current when the child was read.
    /// Skipping that re-validation is the classic OLC bug: the planted
    /// `buggy` strategy in the correctness pillar does exactly that and
    /// is convicted by the linearizability checker.
    ///
    /// After a successful validation the node's **slot generation** is
    /// re-checked ([`NodeRef::stale`]): a concurrent vacuum may have
    /// recycled the slot after the unlatched hop that produced `cur`'s
    /// id (a right-link chase crossing a parent boundary is the case
    /// parent re-validation cannot cover). The generation only changes
    /// inside an exclusive section, so checking it *after* the validated
    /// window proves the slot held this id's node for the whole window.
    /// The second planted `buggy` reader skips exactly this check.
    ///
    /// On any failed window the descent restarts from the deepest
    /// recorded ancestor whose version still validates (or the root).
    /// Non-covering nodes (a split moved the key right inside our
    /// window) are recovered from by chasing right links, as in the
    /// link protocol. All closure reads are defensive: any index that
    /// can tear under a concurrent write uses checked access, and a
    /// miss is treated as a failed validation.
    ///
    /// # Safety
    ///
    /// Every node visit runs its reads inside an unvalidated seqlock
    /// window. The routing reads this function performs obey that
    /// contract itself (POD fields, checked indexing, `Copy` node ids —
    /// slab slots are never deallocated, so even a torn id dereferences
    /// to *initialized* memory and is then rejected by generation or
    /// version validation). The caller must guarantee `leaf_read` obeys
    /// it too; in particular `leaf_read` must not materialize heap-owning
    /// values (see [`OlcValue`]).
    #[allow(unsafe_code)]
    unsafe fn olc_descend<R>(
        &self,
        key: u64,
        leaf_read: impl Fn(&Node<V>) -> R,
    ) -> (NodeRef<V>, R) {
        enum Step<R> {
            Down(NodeId),
            Right(NodeId),
            Done(R),
        }
        // (node, version) per visited level, root-side first.
        let mut path: Vec<(NodeRef<V>, u64)> = Vec::new();
        let mut cur: NodeRef<V> = self.root_ref();
        loop {
            self.counters.record_validation();
            // SAFETY: `covers`/`is_leaf`/`child_index` read POD fields,
            // the child lookup is checked (`get`), ids are `Copy`, and
            // `leaf_read` obeys the window discipline per this
            // function's contract.
            let attempt = unsafe {
                cur.read_optimistic(|n| {
                    if !n.covers(key) {
                        n.right.map(Step::Right)
                    } else if n.is_leaf() {
                        Some(Step::Done(leaf_read(n)))
                    } else {
                        match &n.children {
                            Children::Internal(kids) => {
                                kids.get(n.child_index(key)).copied().map(Step::Down)
                            }
                            Children::Leaf(_) => None,
                        }
                    }
                })
            };
            // Hand-over-hand: the parent must still be unchanged now
            // that this node's read window has closed, or the routing
            // that led here may have been stale. The slot generation is
            // checked after the successful window for the same reason —
            // a recycled slot means this id's node was gone before the
            // window even opened.
            let parent_ok = path.last().is_none_or(|(p, v)| p.validate(*v));
            if parent_ok && !cur.stale() {
                match attempt {
                    Some((_, Some(Step::Done(out)))) => {
                        return (cur, out);
                    }
                    Some((ver, Some(Step::Down(child)))) => {
                        let child = cur.at(child);
                        path.push((cur, ver));
                        cur = child;
                        continue;
                    }
                    Some((_, Some(Step::Right(right)))) => {
                        self.counters.record_chase();
                        cur.goto(right);
                        continue;
                    }
                    _ => {}
                }
            }
            // Validation failed (this window tore, the parent moved
            // underneath it, or the slot was recycled): restart from the
            // deepest ancestor whose recorded version still holds.
            let writer_blocked = cur.version().is_none();
            self.counters.record_olc_restart(writer_blocked);
            while path.last().is_some_and(|(p, v)| !p.validate(*v)) {
                path.pop();
            }
            cur = match path.pop() {
                Some((ancestor, _)) => ancestor, // revisited with a fresh version
                None => self.root_ref(),
            };
            if writer_blocked {
                // The writer holds the node; yield rather than spin the
                // window shut.
                thread::yield_now();
            }
        }
    }

    /// Read-crab descent to the leaf *handle* for `key` (the caller
    /// re-latches it; used by range scans, which continue along the leaf
    /// chain from there).
    fn leaf_handle_for(&self, key: u64) -> NodeRef<V> {
        let mut guard = self.lock_root_read(false).expect("blocking");
        loop {
            if guard.is_leaf() {
                return guard.node_ref();
            }
            let child = guard.at(guard.child_for(key));
            guard = self.latch_read(&child, false).expect("blocking");
        }
    }

    // ------------------------------------------------------------------
    // Exclusive crab descents and the shared split-upward path.
    // ------------------------------------------------------------------

    /// Exclusive crab to the leaf for `key`. Retains the latch chain
    /// above every node that is unsafe per `is_unsafe` (or every node,
    /// with `retain_all`); returns the retained guards, top-first, last
    /// being the leaf. `None` only in probe mode.
    fn descend_exclusive(
        &self,
        key: u64,
        is_unsafe: impl Fn(&Node<V>) -> bool,
        retain_all: bool,
        probe: bool,
    ) -> Option<Vec<WriteGuard<V>>> {
        let mut held: Vec<WriteGuard<V>> = vec![self.lock_root_write(probe)?];
        let mut peak = 1;
        loop {
            let child = {
                let top = held.last().expect("chain never empty");
                if top.is_leaf() {
                    self.counters.note_chain_depth(peak);
                    return Some(held);
                }
                top.at(top.child_for(key))
            };
            let child_guard = self.latch_write(&child, probe)?;
            if !retain_all && !is_unsafe(&child_guard) {
                held.clear(); // child is safe: release every ancestor
            }
            held.push(child_guard);
            peak = peak.max(held.len());
        }
    }

    /// [`Self::descend_exclusive`] with probe mode decided by (and spill
    /// fallback for) the transaction-retention state.
    fn descend_exclusive_safe(
        &self,
        key: u64,
        is_unsafe: impl Fn(&Node<V>) -> bool,
        retain_all: bool,
    ) -> Vec<WriteGuard<V>> {
        if self.must_probe() {
            if let Some(held) = self.descend_exclusive(key, &is_unsafe, retain_all, true) {
                return held;
            }
            self.txn_spill();
        }
        self.descend_exclusive(key, &is_unsafe, retain_all, false)
            .expect("blocking descent")
    }

    /// Inserts into an exclusively latched chain's leaf and splits
    /// upward through it (shared by the crab and optimistic-redo write
    /// paths). The chain is consumed into transaction retention.
    fn insert_through_chain(&self, mut held: Vec<WriteGuard<V>>, key: u64, val: V) -> Option<V> {
        let leaf = held.last_mut().expect("descent reaches a leaf");
        debug_assert!(leaf.covers(key), "coupled descents never go stale");
        let old = leaf.leaf_insert(key, val);
        if old.is_some() {
            self.txn_retain(held);
            return old; // replacement: no growth, no split
        }
        self.len.fetch_add(1, Ordering::AcqRel);
        // Split upward through the retained chain.
        let mut idx = held.len() - 1;
        while held[idx].overfull(self.cap) {
            let split_level = held[idx].level.min(u16::MAX as usize) as u16;
            let split_id = held[idx].id();
            cbtree_obs::trace::split_begin(split_level, split_id.to_bits());
            let (sep, sib) = split_node(&self.arena, &mut held[idx], self.cap);
            if idx == 0 {
                // Only the true root can overflow at the chain's top: a
                // retain-all chain starts there, and any released-above
                // chain top was safe when latched and gained at most one
                // separator.
                let level = held[0].level + 1;
                let new_root = make_root(&self.arena, split_id, sep, sib.id(), level);
                let swung = self.root.compare_exchange(
                    split_id.to_bits(),
                    new_root.id().to_bits(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                debug_assert!(swung.is_ok(), "chain top overflowed but was not the root");
                cbtree_obs::trace::split_end(split_level, split_id.to_bits());
                break;
            }
            held[idx - 1].insert_separator(sep, sib.id());
            cbtree_obs::trace::split_end(split_level, split_id.to_bits());
            idx -= 1;
        }
        self.txn_retain(held);
        None
    }

    /// Full exclusive-crab insert (the Naive Lock-coupling insert; also
    /// the Optimistic redo pass and the Two-Phase insert).
    fn insert_crab(&self, key: u64, val: V, retain_all: bool) -> Option<V> {
        let held = self.descend_exclusive_safe(key, |n| n.insert_unsafe(self.cap), retain_all);
        self.insert_through_chain(held, key, val)
    }

    /// Full exclusive-crab remove (merge-at-empty with lazy reclamation:
    /// latches are retained above delete-unsafe nodes, but an emptied
    /// node simply persists until a [`DescentTree::vacuum`] pass).
    fn remove_crab(&self, key: u64, retain_all: bool) -> Option<V> {
        let mut held = self.descend_exclusive_safe(key, |n| n.delete_unsafe(), retain_all);
        let leaf = held.last_mut().expect("descent reaches a leaf");
        let old = leaf.leaf_remove(key);
        if old.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        self.txn_retain(held);
        old
    }

    // ------------------------------------------------------------------
    // Vacuum: unlink emptied leaves and recycle their slots.
    // ------------------------------------------------------------------

    /// Unlinks emptied leaves and returns their arena slots to the free
    /// list, bumping each slot's generation so stale handles convict.
    /// Returns the number of slots reclaimed.
    ///
    /// The pass crabs exclusively down the leftmost spine to level 2 and
    /// walks that level's right-link chain; under each parent `P` (held
    /// exclusively) an empty non-leftmost leaf `E = kids[i]` is unlinked
    /// by latching `L = kids[i-1]` then `E` (parent-before-child and
    /// left-before-right, the same order every descent uses, so the
    /// pass cannot deadlock with ordinary operations), splicing
    /// `L.right = E.right` / `L.high = E.high`, removing `E`'s separator
    /// from `P`, and retiring `E`'s slot *while still holding `E`'s
    /// exclusive latch* — the ordering the generation protocol requires
    /// (see [`crate::arena`]).
    ///
    /// Leftmost leaves and old roots are never reclaimed, so root ids
    /// stay ABA-free. A no-op (returning 0) for the link strategies:
    /// their descents hold handles across unlatched windows with no
    /// revalidation protocol, which is exactly the reader recycling
    /// would break — lazy reclamation remains their documented behavior.
    pub fn vacuum(&self) -> usize {
        if matches!(S::READ, ReadPolicy::Link) || matches!(S::UPDATE, UpdatePolicy::Link) {
            return 0;
        }
        if self.must_probe() {
            self.txn_spill(); // never block while holding retained latches
        }
        let _one_at_a_time = self
            .vacuum_serial
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut parent = self.lock_root_write(false).expect("blocking");
        if parent.is_leaf() {
            return 0; // a lone leaf root is never reclaimed
        }
        // Crab down the leftmost spine to level 2.
        while parent.level > 2 {
            let child = match &parent.children {
                Children::Internal(kids) => parent.at(kids[0]),
                Children::Leaf(_) => unreachable!("level > 2 is internal"),
            };
            parent = self.latch_write(&child, false).expect("blocking");
        }
        let mut freed = 0;
        loop {
            let mut i = 1; // kids[0] is never reclaimed
            loop {
                let (l_id, e_id) = match &parent.children {
                    Children::Internal(kids) if i < kids.len() => (kids[i - 1], kids[i]),
                    _ => break,
                };
                let l_ref = parent.at(l_id);
                let e_ref = parent.at(e_id);
                let mut l = self.latch_write(&l_ref, false).expect("blocking");
                let mut e = self.latch_write(&e_ref, false).expect("blocking");
                if e.is_leaf() && e.keys.is_empty() {
                    // Splice E out of the leaf chain and the parent.
                    l.right = e.right;
                    l.high = e.high;
                    parent.keys.remove(i - 1);
                    if let Children::Internal(kids) = &mut parent.children {
                        kids.remove(i);
                    }
                    // Generation bump inside E's exclusive section, then
                    // release, then free-list — the retire protocol.
                    self.arena.retire(&mut e);
                    drop(e);
                    self.arena.recycle(e_id);
                    freed += 1;
                    // kids[i] is now the old kids[i+1]: don't advance.
                } else {
                    drop(e);
                    i += 1;
                }
                drop(l);
            }
            let next = parent.right;
            match next {
                // Crab rightward along level 2 (next latched before
                // `parent` releases, left before right).
                Some(id) => {
                    let next_ref = parent.at(id);
                    parent = self.latch_write(&next_ref, false).expect("blocking");
                }
                None => return freed,
            }
        }
    }

    // ------------------------------------------------------------------
    // The optimistic first pass.
    // ------------------------------------------------------------------

    /// Optimistic first pass: read-crab to the leaf's parent, then take
    /// the leaf's exclusive latch while still holding the parent's
    /// shared latch. Returns the exclusively latched leaf.
    fn optimistic_first_pass(&self, key: u64) -> WriteGuard<V> {
        loop {
            // Root cases need id revalidation after latching.
            let root = self.root_ref();
            if root.read().is_leaf() {
                let guard = self.latch_write(&root, false).expect("blocking");
                if guard.id() == self.root_id() && guard.is_leaf() {
                    return guard;
                }
                continue; // root split under us: retry
            }
            let guard = self.latch_read(&root, false).expect("blocking");
            if guard.id() != self.root_id() {
                continue;
            }
            // Descend with shared crabbing; exclusive-latch the leaf.
            let mut parent = guard;
            loop {
                let child = parent.at(parent.child_for(key));
                if parent.level == 2 {
                    let leaf = self.latch_write(&child, false).expect("blocking");
                    debug_assert!(leaf.is_leaf());
                    return leaf; // parent shared latch drops here
                }
                parent = self.latch_read(&child, false).expect("blocking");
            }
        }
    }

    // ------------------------------------------------------------------
    // The Lehman–Yao link paths.
    // ------------------------------------------------------------------

    /// Latch-free-style descent (one shared latch at a time) to the leaf
    /// *candidate* for `key`, recording the visited node of every
    /// internal level as ascent hints when `stack` is given. The caller
    /// must still chase right after latching the returned leaf.
    fn link_descend(&self, key: u64, mut stack: Option<&mut Vec<NodeRef<V>>>) -> NodeRef<V> {
        let mut cur: NodeRef<V> = self.root_ref();
        loop {
            let next = {
                let g = self.latch_read(&cur, false).expect("blocking");
                if !g.covers(key) {
                    self.counters.record_chase();
                    g.right.expect("finite high key implies right link")
                } else {
                    match &g.children {
                        Children::Leaf(_) => return cur.clone(),
                        Children::Internal(_) => {
                            if let Some(stack) = stack.as_deref_mut() {
                                stack.push(cur.clone());
                            }
                            g.child_for(key)
                        }
                    }
                }
            };
            cur.goto(next);
        }
    }

    /// Exclusively latches `start`, chasing right until the node covers
    /// `key`. Returns the guard of the covering node.
    fn link_latch_covering(&self, start: NodeRef<V>, key: u64) -> WriteGuard<V> {
        let mut cur = start;
        let mut guard = self.latch_write(&cur, false).expect("blocking");
        while !guard.covers(key) {
            let next = guard.right.expect("covers");
            drop(guard); // at most one latch at a time
            self.counters.record_chase();
            cur.goto(next);
            guard = self.latch_write(&cur, false).expect("blocking");
        }
        // The link discipline's whole point: the chain never exceeds 1.
        self.counters.note_chain_depth(1);
        guard
    }

    /// Lehman–Yao insert: latch the covering leaf alone, half-split if
    /// overfull, then post separators upward via the ascent hints.
    fn insert_link(&self, key: u64, val: V) -> Option<V> {
        let mut stack = Vec::new();
        let leaf = self.link_descend(key, Some(&mut stack));
        let mut guard = self.link_latch_covering(leaf, key);
        let old = guard.leaf_insert(key, val);
        if old.is_some() {
            return old;
        }
        self.len.fetch_add(1, Ordering::AcqRel);
        if !guard.overfull(self.cap) {
            return None;
        }
        // Half-split, then post separators upward.
        let mut split_level = guard.level.min(u16::MAX as usize) as u16;
        let mut split_id = guard.id();
        cbtree_obs::trace::split_begin(split_level, split_id.to_bits());
        let (mut sep, mut sib) = split_node(&self.arena, &mut guard, self.cap);
        let mut left = guard.id();
        let mut level = guard.level;
        drop(guard);
        // The sibling is linked and reachable, but its separator is not
        // yet posted in the parent — the Lehman–Yao window every other
        // operation must tolerate via right-link chases.
        cbtree_sync::inject::perturb(cbtree_sync::inject::Site::HalfSplit);
        loop {
            let parent = match stack.pop() {
                Some(p) => p,
                None => {
                    if self.link_try_grow_root(left, sep, sib.id(), level) {
                        cbtree_obs::trace::split_end(split_level, split_id.to_bits());
                        return None;
                    }
                    // The tree grew underneath us; find today's ancestor.
                    self.link_find_level_ancestor(level + 1, sep)
                }
            };
            let mut pg = self.link_latch_covering(parent, sep);
            debug_assert!(pg.level == level + 1, "ascent hint at wrong level");
            pg.insert_separator(sep, sib.id());
            // The separator is posted: this level's Lehman–Yao window
            // closes (a parent overflow opens a fresh one, one level up).
            cbtree_obs::trace::split_end(split_level, split_id.to_bits());
            if !pg.overfull(self.cap) {
                return None;
            }
            split_level = pg.level.min(u16::MAX as usize) as u16;
            split_id = pg.id();
            cbtree_obs::trace::split_begin(split_level, split_id.to_bits());
            let (s, sb) = split_node(&self.arena, &mut pg, self.cap);
            left = pg.id();
            level = pg.level;
            sep = s;
            sib = sb;
            drop(pg);
            // Same unposted-separator window, one level up.
            cbtree_sync::inject::perturb(cbtree_sync::inject::Site::HalfSplit);
        }
    }

    /// Attempts the root swap after splitting what was the root. Returns
    /// `false` when someone else already grew the tree.
    fn link_try_grow_root(&self, left: NodeId, sep: u64, sib: NodeId, level: usize) -> bool {
        let new_root = make_root(&self.arena, left, sep, sib, level + 1);
        let swung = self.root.compare_exchange(
            left.to_bits(),
            new_root.id().to_bits(),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if swung.is_ok() {
            true
        } else {
            // Lost the race: the speculatively allocated root was never
            // published, so retire it straight back to the free list.
            let mut g = new_root.write_guard();
            self.arena.retire(&mut g);
            drop(g);
            self.arena.recycle(new_root.id());
            false
        }
    }

    /// Finds the current node at `level` whose range covers `key` (read
    /// descent from the current root; used only in the rare corner where
    /// the root grew while we were splitting the old root).
    fn link_find_level_ancestor(&self, level: usize, key: u64) -> NodeRef<V> {
        'restart: loop {
            let mut cur: NodeRef<V> = self.root_ref();
            loop {
                let next = {
                    let g = self.latch_read(&cur, false).expect("blocking");
                    if g.level == level {
                        return cur.clone();
                    }
                    if g.level < level {
                        // Another thread split the old root but has not
                        // yet swapped the root pointer, so no node at
                        // `level` is published yet. We hold no latches,
                        // so the grower cannot be waiting on us: spin
                        // until its swap lands.
                        drop(g);
                        std::thread::yield_now();
                        continue 'restart;
                    }
                    if !g.covers(key) {
                        g.right.expect("covers")
                    } else {
                        g.child_for(key)
                    }
                };
                cur.goto(next);
            }
        }
    }

    /// Lehman–Yao remove: latch the covering leaf alone (merge-at-empty
    /// with lazy reclamation: an emptied leaf persists, still linked).
    fn remove_link(&self, key: u64) -> Option<V> {
        let leaf = self.link_descend(key, None);
        let mut guard = self.link_latch_covering(leaf, key);
        let old = guard.leaf_remove(key);
        if old.is_some() {
            self.len.fetch_sub(1, Ordering::AcqRel);
        }
        old
    }

    // ------------------------------------------------------------------
    // Public operations, dispatched on the strategy's policies.
    // ------------------------------------------------------------------

    /// Inserts `key → val`; returns the previous value if the key
    /// existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        cbtree_obs::trace::op_begin(cbtree_obs::opcode::INSERT);
        let out = self.insert_impl(key, val);
        cbtree_obs::trace::op_end(cbtree_obs::opcode::INSERT, out.is_some());
        out
    }

    fn insert_impl(&self, key: u64, val: V) -> Option<V> {
        self.counters.record_op();
        match S::UPDATE {
            UpdatePolicy::Crab { retain_all } => self.insert_crab(key, val, retain_all),
            UpdatePolicy::OptimisticLeaf => {
                {
                    let mut leaf = self.optimistic_first_pass(key);
                    debug_assert!(leaf.covers(key));
                    let exists = leaf.keys.binary_search(&key).is_ok();
                    if exists || !leaf.insert_unsafe(self.cap) {
                        let old = leaf.leaf_insert(key, val);
                        if old.is_none() {
                            self.len.fetch_add(1, Ordering::AcqRel);
                        }
                        return old;
                    }
                    // Unsafe leaf: release and redo pessimistically.
                }
                self.counters.record_restart();
                self.insert_crab(key, val, false)
            }
            UpdatePolicy::Link => self.insert_link(key, val),
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &u64) -> Option<V> {
        cbtree_obs::trace::op_begin(cbtree_obs::opcode::DELETE);
        let out = self.remove_impl(key);
        cbtree_obs::trace::op_end(cbtree_obs::opcode::DELETE, out.is_some());
        out
    }

    fn remove_impl(&self, key: &u64) -> Option<V> {
        self.counters.record_op();
        match S::UPDATE {
            UpdatePolicy::Crab { retain_all } => self.remove_crab(*key, retain_all),
            UpdatePolicy::OptimisticLeaf => {
                {
                    let mut leaf = self.optimistic_first_pass(*key);
                    if !leaf.delete_unsafe() {
                        let old = leaf.leaf_remove(*key);
                        if old.is_some() {
                            self.len.fetch_sub(1, Ordering::AcqRel);
                        }
                        return old;
                    }
                }
                self.counters.record_restart();
                self.remove_crab(*key, false)
            }
            UpdatePolicy::Link => self.remove_link(*key),
        }
    }

    /// Whether `key` is present.
    #[allow(unsafe_code)]
    pub fn contains_key(&self, key: &u64) -> bool {
        cbtree_obs::trace::op_begin(cbtree_obs::opcode::CONTAINS);
        self.counters.record_op();
        let found = if matches!(S::READ, ReadPolicy::Olc) {
            // SAFETY: the leaf closure binary-searches the inline POD
            // `u64` key array — no heap value is materialized; a torn
            // window yields at worst a wrong bool, discarded on
            // validation.
            unsafe { self.olc_descend(*key, |n| n.keys.binary_search(key).is_ok()) }.1
        } else {
            let (leaf, _held) = self.read_leaf(*key);
            leaf.keys.binary_search(key).is_ok()
        };
        cbtree_obs::trace::op_end(cbtree_obs::opcode::CONTAINS, found);
        found
    }
}

impl<V: OlcValue, S: LatchStrategy> DescentTree<V, S> {
    /// Looks `key` up, cloning the value out.
    ///
    /// On an OLC tree the descent is latch-free; the value itself is
    /// cloned inside the unvalidated read window only for types whose
    /// [`OlcValue`] impl vouches for it (`V::IN_WINDOW`). Heap-owning
    /// values are materialized under one brief shared leaf latch
    /// instead — still zero latches on every inner level.
    #[allow(unsafe_code)]
    pub fn get(&self, key: &u64) -> Option<V> {
        cbtree_obs::trace::op_begin(cbtree_obs::opcode::SEARCH);
        self.counters.record_op();
        let out = if matches!(S::READ, ReadPolicy::Olc) {
            if V::IN_WINDOW {
                // Defensive indexing: keys/vals can disagree mid-write;
                // a miss is discarded by the failed validation.
                // SAFETY: `V::IN_WINDOW` is set only by an `unsafe impl
                // OlcValue` asserting that cloning a torn `V` is a
                // plain byte copy of plain old data — at worst a wrong
                // value, discarded on failed validation, never UB. The
                // other closure reads follow `olc_descend`'s contract.
                unsafe {
                    self.olc_descend(*key, |n| match &n.children {
                        Children::Leaf(vals) => n
                            .keys
                            .binary_search(key)
                            .ok()
                            .and_then(|i| vals.get(i))
                            .cloned(),
                        Children::Internal(_) => None,
                    })
                }
                .1
            } else {
                self.olc_get_latched(*key)
            }
        } else {
            let (leaf, _held) = self.read_leaf(*key);
            let out = leaf.leaf_get(*key).cloned();
            drop((leaf, _held));
            out
        };
        cbtree_obs::trace::op_end(cbtree_obs::opcode::SEARCH, out.is_some());
        out
    }

    /// OLC lookup for values that must not be cloned inside an
    /// unvalidated window (`V::IN_WINDOW == false`): the descent to the
    /// leaf stays latch-free, then the value is materialized under a
    /// shared latch on the leaf alone — the only reader latch such an
    /// operation ever takes. If the leaf split after the locator window
    /// closed, right links are chased latched, as in the link protocol;
    /// if the leaf's slot was **recycled** in the unlatched gap between
    /// locator and latch, the stale guard is detected and the locator
    /// redone — the generation check the third planted `buggy` reader
    /// skips.
    #[allow(unsafe_code)]
    fn olc_get_latched(&self, key: u64) -> Option<V> {
        'relocate: loop {
            // SAFETY: the locator closure reads nothing from the node.
            let (mut cur, ()) = unsafe { self.olc_descend(key, |_| ()) };
            loop {
                let g = self.latch_read(&cur, false).expect("blocking");
                if g.stale() {
                    drop(g);
                    self.counters.record_olc_restart(false);
                    continue 'relocate;
                }
                if g.covers(key) {
                    return g.leaf_get(key).cloned();
                }
                let next = g.right.expect("covers");
                drop(g); // at most one latch at a time
                self.counters.record_chase();
                cur.goto(next);
            }
        }
    }

    // ------------------------------------------------------------------
    // Sorted-batch execution with amortized descent.
    // ------------------------------------------------------------------

    /// Locates and exclusively latches the leaf covering `key`
    /// (blocking mode — callers spill retained transaction latches
    /// first, and must hold **no** other latch: the descent acquires
    /// root-to-leaf, and holding a leaf across it would invert that
    /// order against a concurrent crab descent). Modeled on the
    /// optimistic first pass — shared crab to the leaf's parent,
    /// exclusive leaf latch taken under the parent's shared latch —
    /// plus the right-link chases the link strategies need: a lagging
    /// separator can route to a node left of the key at any level.
    /// Children are resolved under their parent's latch and internal
    /// slots are never recycled, so no handle here can be stale.
    fn batch_leaf_write(&self, key: u64) -> WriteGuard<V> {
        loop {
            // Root cases need id revalidation after latching.
            let root = self.root_ref();
            if root.read().is_leaf() {
                let guard = self.latch_write(&root, false).expect("blocking");
                if guard.id() == self.root_id() && guard.is_leaf() {
                    return guard; // a root leaf covers every key
                }
                continue; // root split under us: retry
            }
            let guard = self.latch_read(&root, false).expect("blocking");
            if guard.id() != self.root_id() {
                continue;
            }
            let mut parent = guard;
            loop {
                // Crab right (shared, left before right) while a
                // concurrent half-split's separator lags in this level's
                // parent (link strategies only; coupled strategies never
                // go stale under a held parent latch).
                while !parent.covers(key) {
                    let next = parent.at(parent.right.expect("finite high key implies right link"));
                    self.counters.record_chase();
                    parent = self.latch_read(&next, false).expect("blocking");
                }
                let child = parent.at(parent.child_for(key));
                if parent.level == 2 {
                    let leaf = self.latch_write(&child, false).expect("blocking");
                    drop(parent);
                    return self.batch_chase_right(leaf, key);
                }
                parent = self.latch_read(&child, false).expect("blocking");
            }
        }
    }

    /// Crabs exclusively rightward from `leaf` until the latched leaf
    /// covers `key`. The right sibling is latched **before** the held
    /// leaf releases — left before right, the same order vacuum uses —
    /// and a held leaf's right sibling cannot be retired out from under
    /// us (vacuum must latch the left neighbor first), so the hop is
    /// deadlock-free and recycle-safe without a staleness check.
    fn batch_chase_right(&self, mut leaf: WriteGuard<V>, key: u64) -> WriteGuard<V> {
        while !leaf.covers(key) {
            let next = leaf.at(leaf.right.expect("finite high key implies right link"));
            self.counters.record_chase();
            let hop = self.latch_write(&next, false).expect("blocking");
            leaf = hop; // left latch releases after the right is held
        }
        leaf
    }

    /// Executes `ops` as one sorted batch with amortized descent; see
    /// [`crate::batch`] for the contract.
    ///
    /// The batch is **stable**-sorted by key, so same-key operations
    /// execute in submission order and the result vector (indexed in
    /// submission order) is exactly what singleton execution would have
    /// returned. One exclusively latched leaf is carried across
    /// consecutive keys: an operation the held leaf covers executes
    /// inline (every removal is leaf-local — merge-at-empty never
    /// restructures on the spot — and so is every non-splitting
    /// insert); a key just past the high key hops the right link while
    /// still holding the current leaf; any other miss drops the leaf
    /// and pays a fresh descent. Inserts that would overflow the leaf
    /// fall back to the strategy's native insert path, holding nothing
    /// across the call, so split correctness stays in one place.
    pub fn execute_batch(&self, ops: Vec<BatchOp<V>>) -> BatchOutcome<V> {
        use cbtree_obs::{opcode, trace};
        if ops.is_empty() {
            return BatchOutcome::empty();
        }
        let mut summary = BatchSummary {
            ops: ops.len() as u64,
            ..BatchSummary::default()
        };
        let mut order: Vec<u32> = (0..ops.len() as u32).collect();
        order.sort_by_key(|&i| ops[i as usize].key()); // stable sort
        let mut slots: Vec<Option<BatchOp<V>>> = ops.into_iter().map(Some).collect();
        let mut results: Vec<Option<V>> = Vec::new();
        results.resize_with(slots.len(), || None);
        let mut held: Option<WriteGuard<V>> = None;
        for i in order {
            let op = slots[i as usize].take().expect("each op executes once");
            let key = op.key();
            let leaf = match held.take() {
                Some(g) if g.covers(key) => {
                    summary.leaf_reuses += 1;
                    g
                }
                Some(g) => {
                    // Peek exactly one right hop while still holding the
                    // current leaf; a key landing further right than the
                    // immediate sibling re-descends instead of walking
                    // the whole chain latched.
                    let next = g.at(g.right.expect("finite high key implies right link"));
                    self.counters.record_chase();
                    let hop = self.latch_write(&next, false).expect("blocking");
                    drop(g);
                    if hop.covers(key) {
                        summary.leaf_reuses += 1;
                        summary.right_hops += 1;
                        hop
                    } else {
                        drop(hop); // no latches across a fresh descent
                        if self.must_probe() {
                            self.txn_spill();
                        }
                        summary.descents += 1;
                        self.batch_leaf_write(key)
                    }
                }
                None => {
                    if self.must_probe() {
                        self.txn_spill();
                    }
                    summary.descents += 1;
                    self.batch_leaf_write(key)
                }
            };
            let mut leaf = leaf;
            match op {
                BatchOp::Get(k) => {
                    trace::op_begin(opcode::SEARCH);
                    self.counters.record_op();
                    let out = leaf.leaf_get(k).cloned();
                    trace::op_end(opcode::SEARCH, out.is_some());
                    results[i as usize] = out;
                    held = Some(leaf);
                }
                BatchOp::Remove(k) => {
                    trace::op_begin(opcode::DELETE);
                    self.counters.record_op();
                    let old = leaf.leaf_remove(k);
                    if old.is_some() {
                        self.len.fetch_sub(1, Ordering::AcqRel);
                    }
                    trace::op_end(opcode::DELETE, old.is_some());
                    results[i as usize] = old;
                    held = Some(leaf);
                }
                BatchOp::Insert(k, v) => {
                    let exists = leaf.keys.binary_search(&k).is_ok();
                    if exists || !leaf.insert_unsafe(self.cap) {
                        trace::op_begin(opcode::INSERT);
                        self.counters.record_op();
                        let old = leaf.leaf_insert(k, v);
                        if old.is_none() {
                            self.len.fetch_add(1, Ordering::AcqRel);
                        }
                        trace::op_end(opcode::INSERT, old.is_some());
                        results[i as usize] = old;
                        held = Some(leaf);
                    } else {
                        // Full leaf: the native insert re-descends and
                        // splits. It records its own op and latches.
                        drop(leaf);
                        summary.fallback_inserts += 1;
                        summary.descents += 1;
                        trace::op_begin(opcode::INSERT);
                        let old = self.insert_impl(k, v);
                        trace::op_end(opcode::INSERT, old.is_some());
                        results[i as usize] = old;
                        held = None;
                    }
                }
            }
        }
        drop(held);
        BatchOutcome { results, summary }
    }

    /// Ascending range scan over `[lo, hi)` via the leaf chain, one
    /// shared latch at a time. Weakly consistent under concurrent
    /// updates (see [`crate::node::collect_range`]).
    ///
    /// On a recovery-variant tree a scan first spills the calling
    /// thread's retained latches (an early commit): the chain walk takes
    /// blocking shared latches, which would self-deadlock on a leaf this
    /// thread retains exclusively.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        cbtree_obs::trace::op_begin(cbtree_obs::opcode::RANGE);
        let out = self.range_impl(lo, hi);
        cbtree_obs::trace::op_end(cbtree_obs::opcode::RANGE, !out.is_empty());
        out
    }

    #[allow(unsafe_code)]
    fn range_impl(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        self.counters.record_op();
        let mut out = Vec::new();
        if lo >= hi {
            return out;
        }
        if self.must_probe() {
            self.txn_spill();
        }
        match S::READ {
            ReadPolicy::Crab | ReadPolicy::RetainAll => {
                // A stale leaf (slot recycled between the descent and the
                // chain walk's latch) restarts the scan at the resume
                // cursor; keys below it were already emitted.
                let mut cursor = lo;
                loop {
                    let leaf = self.leaf_handle_for(cursor);
                    match collect_range(leaf, cursor, hi, &mut out) {
                        None => break,
                        Some(resume) => {
                            self.counters.record_restart();
                            cursor = resume;
                        }
                    }
                }
            }
            ReadPolicy::Olc if V::IN_WINDOW => {
                // Latch-free chain walk: each leaf is one validated read
                // window; a torn window retries the same leaf, so pages
                // are appended exactly once, while a stale leaf (slot
                // recycled mid-walk) re-descends to the resume cursor.
                // Weakly consistent, like the latched scans.
                // SAFETY: the locator closure reads nothing; the page
                // closure uses checked indexing over the inline POD key
                // array, copies POD node ids, and clones `V` in-window
                // only because `V::IN_WINDOW` (an `unsafe impl
                // OlcValue`) asserts that is a plain byte copy — at
                // worst a wrong value, discarded on validation.
                let mut cursor = lo;
                let (mut cur, ()) = unsafe { self.olc_descend(cursor, |_| ()) };
                loop {
                    self.counters.record_validation();
                    #[allow(unsafe_code)]
                    let attempt = unsafe {
                        cur.read_optimistic(|n| {
                            if !n.covers(cursor) {
                                // A split moved our range right inside
                                // the window: chase, collecting nothing.
                                return n.right.map(|r| (Vec::new(), Some(r), None, true));
                            }
                            let mut page = Vec::new();
                            if let Children::Leaf(vals) = &n.children {
                                for (i, &k) in n.keys.iter().enumerate() {
                                    if k >= cursor && k < hi {
                                        if let Some(v) = vals.get(i) {
                                            page.push((k, v.clone()));
                                        }
                                    }
                                }
                            }
                            let next = if n.high.is_none_or(|h| h >= hi) {
                                None // range exhausted
                            } else {
                                n.right
                            };
                            Some((page, next, n.high, false))
                        })
                    };
                    match attempt {
                        Some((_, Some((page, next, high, chased)))) if !cur.stale() => {
                            if chased {
                                self.counters.record_chase();
                            }
                            out.extend(page);
                            match next {
                                Some(r) => {
                                    if !chased {
                                        // Everything below this leaf's
                                        // high key is emitted.
                                        if let Some(h) = high {
                                            cursor = cursor.max(h);
                                        }
                                    }
                                    cur.goto(r);
                                }
                                None => return out,
                            }
                        }
                        _ if cur.stale() => {
                            // The slot was recycled mid-walk: this leaf's
                            // content belongs to someone else. Re-descend
                            // to the resume cursor.
                            self.counters.record_olc_restart(false);
                            cur = unsafe { self.olc_descend(cursor, |_| ()) }.0;
                        }
                        _ => {
                            let writer_blocked = cur.version().is_none();
                            self.counters.record_olc_restart(writer_blocked);
                            if writer_blocked {
                                thread::yield_now();
                            }
                        }
                    }
                }
            }
            // OLC over heap-owning values (`!V::IN_WINDOW`) lands here,
            // on the latched Link-style chain walk — the values cannot
            // be cloned inside an unvalidated window — entered through
            // a latch-free locator descent.
            ReadPolicy::Link | ReadPolicy::Olc => {
                let mut cursor = lo;
                let mut cur = if matches!(S::READ, ReadPolicy::Link) {
                    self.link_descend(cursor, None)
                } else {
                    // SAFETY: the locator closure reads nothing.
                    unsafe { self.olc_descend(cursor, |_| ()) }.0
                };
                loop {
                    let next = {
                        let g = self.latch_read(&cur, false).expect("blocking");
                        if g.stale() {
                            // Slot recycled in the unlatched hop (OLC
                            // trees only; link trees never vacuum):
                            // relocate to the resume cursor.
                            drop(g);
                            self.counters.record_olc_restart(false);
                            cur = if matches!(S::READ, ReadPolicy::Link) {
                                self.link_descend(cursor, None)
                            } else {
                                unsafe { self.olc_descend(cursor, |_| ()) }.0
                            };
                            continue;
                        }
                        if !g.covers(cursor) {
                            self.counters.record_chase();
                            Some(g.right.expect("covers"))
                        } else {
                            if let Children::Leaf(vals) = &g.children {
                                for (i, &k) in g.keys.iter().enumerate() {
                                    if k >= cursor && k < hi {
                                        out.push((k, vals[i].clone()));
                                    }
                                }
                            }
                            match g.high {
                                None => None,
                                Some(h) if h >= hi => None, // range exhausted
                                Some(h) => {
                                    cursor = cursor.max(h);
                                    Some(g.right.expect("finite high"))
                                }
                            }
                        }
                    };
                    match next {
                        Some(n) => cur.goto(n),
                        None => return out,
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{LockCouplingTree, RecoveryLeafTree, RecoveryNaiveTree};
    use std::sync::Arc;

    // The write-path unit tests formerly in `writepath.rs`, re-based on
    // the engine through its lock-coupling alias.

    #[test]
    fn insert_and_get_sequentially() {
        let tree: LockCouplingTree<u32> = LockCouplingTree::new(8);
        for k in 0..500u64 {
            assert!(tree.insert(k * 3, k as u32).is_none());
        }
        assert_eq!(tree.len(), 500);
        for k in 0..500u64 {
            assert_eq!(tree.get(&(k * 3)), Some(k as u32));
            assert_eq!(tree.get(&(k * 3 + 1)), None);
        }
        tree.check().unwrap();
    }

    #[test]
    fn replacement_returns_old_value() {
        let tree = LockCouplingTree::new(8);
        tree.insert(7, 1);
        assert_eq!(tree.insert(7, 2), Some(1));
        assert_eq!(tree.len(), 1, "no growth on replace");
        assert_eq!(tree.get(&7), Some(2));
    }

    #[test]
    fn remove_roundtrip() {
        let tree = LockCouplingTree::new(8);
        for k in 0..200u64 {
            tree.insert(k, k as u32);
        }
        assert_eq!(tree.remove(&100), Some(100));
        assert_eq!(tree.remove(&100), None);
        assert_eq!(tree.len(), 199);
        assert_eq!(tree.get(&100), None);
        tree.check().unwrap();
    }

    #[test]
    fn root_grows_through_multiple_levels() {
        let tree = LockCouplingTree::new(4);
        for k in 0..5000u64 {
            tree.insert(k, 0u8);
        }
        let height = tree.height();
        assert!(height >= 5, "height {height}");
        tree.check().unwrap();
    }

    #[test]
    fn counters_track_latches_and_ops() {
        let tree = LockCouplingTree::new(8);
        for k in 0..100u64 {
            tree.insert(k, ());
        }
        for k in 0..100u64 {
            assert!(tree.contains_key(&k));
        }
        let snap = tree.counters_snapshot();
        assert_eq!(snap.ops, 200);
        assert!(snap.w_latch_total() >= 100, "every insert latches W");
        assert!(snap.r_latch_total() >= 100, "every lookup latches R");
        assert!(snap.peak_chain >= 2, "retained chains were observed");
        assert_eq!(snap.restarts, 0);
        assert_eq!(snap.chases, 0);
    }

    #[test]
    fn vacuum_reclaims_emptied_leaves() {
        let tree = LockCouplingTree::new(4);
        for k in 0..512u64 {
            tree.insert(k, k);
        }
        tree.check().unwrap();
        // Empty a swath of leaves in the middle of the key space.
        for k in 100..400u64 {
            tree.remove(&k);
        }
        let allocated_before = tree.arena().allocated();
        let freed = tree.vacuum();
        assert!(freed > 10, "emptied leaves were reclaimed (freed {freed})");
        assert_eq!(tree.arena().recycled(), freed as u64);
        tree.check().unwrap();
        // Every surviving key is still reachable, ranges included.
        for k in 0..100u64 {
            assert_eq!(tree.get(&k), Some(k));
        }
        for k in 100..400u64 {
            assert_eq!(tree.get(&k), None);
        }
        for k in 400..512u64 {
            assert_eq!(tree.get(&k), Some(k));
        }
        assert_eq!(tree.range(0, 512).len(), 212);
        // Recycled slots are reused before the arena grows again.
        for k in 100..400u64 {
            tree.insert(k, k);
        }
        tree.check().unwrap();
        assert!(
            tree.arena().allocated() > allocated_before,
            "reinserts split into recycled slots"
        );
        assert_eq!(tree.range(0, 512).len(), 512);
    }

    #[test]
    fn vacuum_under_concurrent_churn_stays_linearizable() {
        let tree = Arc::new(crate::olc::OlcTree::<u64>::new(4));
        // Anchor keys that must remain visible throughout.
        for k in (0..2_000u64).step_by(20) {
            tree.insert(k, k);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..2 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                // Churn: fill and empty non-anchor keys, vacuuming as we
                // go, so leaves empty out and slots recycle under the
                // readers' feet.
                for round in 0..60u64 {
                    let base = (t * 10_000 + 2_000) as u64;
                    for k in 0..300u64 {
                        tree.insert(base + k, round);
                    }
                    for k in 0..300u64 {
                        tree.remove(&(base + k));
                    }
                    tree.vacuum();
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            }));
        }
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for k in (0..2_000u64).step_by(20) {
                        assert_eq!(tree.get(&k), Some(k), "anchor key vanished");
                        assert!(tree.contains_key(&k));
                    }
                    let got = tree.range(0, 2_000);
                    assert!(got.len() >= 100, "anchors missing from range");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(tree.arena().recycled() > 0, "churn recycled slots");
        tree.check().unwrap();
    }

    #[test]
    fn recovery_naive_retains_until_commit_and_spills_on_conflict() {
        let tree = Arc::new(RecoveryNaiveTree::new(4));
        for k in 0..64u64 {
            tree.insert(k, k);
        }
        tree.txn_commit();
        let pre = tree.counters_snapshot();
        assert!(pre.txn_commits >= 1);

        // Retain a leaf latch, then prove another thread can't touch it
        // until commit.
        tree.insert(10, 999);
        let t = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                // Blocks until the owner commits.
                tree.insert(11, 1);
                tree.txn_commit();
            })
        };
        std::thread::yield_now();
        tree.txn_commit();
        t.join().unwrap();
        assert_eq!(tree.get(&10), Some(999));
        assert_eq!(tree.get(&11), Some(1));

        // Self-conflict: with latches retained, re-reading the same leaf
        // must spill rather than self-deadlock.
        tree.insert(20, 7);
        assert_eq!(tree.get(&20), Some(7));
        let snap = tree.counters_snapshot();
        assert!(snap.txn_spills >= 1, "own-leaf reread must spill");
        tree.txn_commit();
        tree.check().unwrap();
    }

    #[test]
    fn recovery_leaf_retains_only_the_leaf() {
        let tree = RecoveryLeafTree::new(4);
        for k in 0..256u64 {
            tree.insert(k, ());
            // Internal latches must already be free: a second update
            // through the same internals (different leaf region) works
            // without a commit in between as long as no leaf collides.
            tree.insert(10_000 + k, ());
            tree.txn_commit();
        }
        assert_eq!(tree.len(), 512);
        tree.check().unwrap();
        let snap = tree.counters_snapshot();
        assert!(snap.txn_commits >= 256);
    }

    #[test]
    fn recovery_range_spills_retained_latches() {
        let tree = RecoveryNaiveTree::new(4);
        for k in 0..64u64 {
            tree.insert(k, k);
        }
        // Without the spill this would self-deadlock on the retained
        // leaf latches.
        let got = tree.range(0, 64);
        assert_eq!(got.len(), 64);
        assert!(tree.counters_snapshot().txn_spills >= 1);
        tree.txn_commit();
        tree.check().unwrap();
    }
}
