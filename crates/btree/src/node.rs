//! Shared node representation for all three concurrent B+-trees.
//!
//! Nodes are `Arc<RwLock<Node<V>>>`; internal nodes hold child `Arc`s, so
//! the structure is safely shared without a slab or unsafe code. Every
//! node — in every protocol — maintains Lehman–Yao metadata (high key and
//! right link): the link protocols need it for correctness, the others
//! carry it for free and it enables one common invariant checker.

use cbtree_sync::FcfsRwLock as RwLock;
use cbtree_sync::SamplePeriod;
use std::sync::Arc;

/// Reference-counted, latch-protected node handle.
pub type NodeRef<V> = Arc<RwLock<Node<V>>>;

/// Children of a node: leaf payloads or internal child pointers.
#[derive(Debug)]
pub enum Children<V> {
    /// Leaf: `vals[i]` is the value for `keys[i]`.
    Leaf(Vec<V>),
    /// Internal: `kids.len() == keys.len() + 1`.
    Internal(Vec<NodeRef<V>>),
}

/// One B+-tree node.
#[derive(Debug)]
pub struct Node<V> {
    /// Sorted keys (separators for internal nodes).
    pub keys: Vec<u64>,
    /// Leaf values or child pointers.
    pub children: Children<V>,
    /// Right sibling on the same level (`None` = rightmost).
    pub right: Option<NodeRef<V>>,
    /// Exclusive upper bound of this node's key range (`None` = +∞).
    pub high: Option<u64>,
    /// Height: 1 = leaf.
    pub level: usize,
}

impl<V> Node<V> {
    /// A fresh empty leaf.
    pub fn new_leaf() -> Self {
        Node {
            keys: Vec::new(),
            children: Children::Leaf(Vec::new()),
            right: None,
            high: None,
            level: 1,
        }
    }

    /// Wraps a node into its shared handle with exact lock timing.
    pub fn into_ref(self) -> NodeRef<V> {
        self.into_ref_sampled(SamplePeriod::EXACT)
    }

    /// Wraps a node into its shared handle whose lock times only one in
    /// `sample.period()` acquisitions (see [`SamplePeriod`]). The lock
    /// is tagged with the node's level so trace events carry it.
    pub fn into_ref_sampled(self, sample: SamplePeriod) -> NodeRef<V> {
        let level = self.level.min(u16::MAX as usize) as u16;
        let handle = Arc::new(RwLock::with_sampling(self, sample));
        handle.set_trace_tag(level);
        handle
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level == 1
    }

    /// Reserves this node's buffers for a tree of node capacity `cap` so
    /// no later insert can ever reallocate them while the node is
    /// shared. Keys grow to at most `cap + 1` (transiently overfull,
    /// just before a split) and internal children to `cap + 2`; the
    /// OLC optimistic readers read node data without any latch (see
    /// `FcfsRwLock::read_optimistic`) and rely on the buffers staying
    /// put for the lifetime of the node. Every constructor that
    /// publishes a node into a tree must call this first.
    pub fn reserve_for(&mut self, cap: usize) {
        let target = cap + 2;
        self.keys.reserve(target.saturating_sub(self.keys.len()));
        match &mut self.children {
            Children::Leaf(vals) => vals.reserve(target.saturating_sub(vals.len())),
            Children::Internal(kids) => kids.reserve((target + 1).saturating_sub(kids.len())),
        }
    }

    /// Lehman–Yao range test: does this node's key range still cover
    /// `key`? `false` means a concurrent split moved the key right.
    pub fn covers(&self, key: u64) -> bool {
        self.high.is_none_or(|h| key < h)
    }

    /// Index of the child an internal node routes `key` to.
    pub fn child_index(&self, key: u64) -> usize {
        debug_assert!(!self.is_leaf());
        self.keys.partition_point(|&k| k <= key)
    }

    /// The child handle for `key`.
    ///
    /// # Panics
    /// Panics on leaves.
    pub fn child_for(&self, key: u64) -> NodeRef<V> {
        match &self.children {
            Children::Internal(kids) => Arc::clone(&kids[self.child_index(key)]),
            Children::Leaf(_) => panic!("child_for on a leaf"),
        }
    }

    /// Leaf lookup.
    pub fn leaf_get(&self, key: u64) -> Option<&V> {
        match &self.children {
            Children::Leaf(vals) => self.keys.binary_search(&key).ok().map(|i| &vals[i]),
            Children::Internal(_) => panic!("leaf_get on internal node"),
        }
    }

    /// Leaf insert/replace; returns the previous value if the key existed.
    pub fn leaf_insert(&mut self, key: u64, val: V) -> Option<V> {
        let pos = match self.keys.binary_search(&key) {
            Ok(i) => {
                if let Children::Leaf(vals) = &mut self.children {
                    return Some(std::mem::replace(&mut vals[i], val));
                }
                unreachable!()
            }
            Err(i) => i,
        };
        self.keys.insert(pos, key);
        if let Children::Leaf(vals) = &mut self.children {
            vals.insert(pos, val);
        }
        None
    }

    /// Leaf removal; returns the value if the key existed.
    pub fn leaf_remove(&mut self, key: u64) -> Option<V> {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                if let Children::Leaf(vals) = &mut self.children {
                    Some(vals.remove(i))
                } else {
                    unreachable!()
                }
            }
            Err(_) => None,
        }
    }

    /// Whether an insert into this node could force a split at node
    /// capacity `cap` — the lock-coupling "insert-unsafe" test.
    pub fn insert_unsafe(&self, cap: usize) -> bool {
        self.keys.len() >= cap
    }

    /// Whether a delete could empty this node.
    pub fn delete_unsafe(&self) -> bool {
        self.keys.len() <= 1
    }

    /// Whether the node holds more than `cap` keys and must split.
    pub fn overfull(&self, cap: usize) -> bool {
        self.keys.len() > cap
    }

    /// Half-splits this node in place, returning `(separator,
    /// new_right_sibling)`. Maintains right links and high keys; the
    /// sibling's lock inherits `sample` (the tree's stats-sampling
    /// period) and its buffers are pre-reserved for node capacity `cap`
    /// (see [`Node::reserve_for`]). The caller must hold this node's
    /// exclusive latch and is responsible for publishing the separator
    /// to the parent.
    pub fn half_split(&mut self, cap: usize, sample: SamplePeriod) -> (u64, NodeRef<V>) {
        let len = self.keys.len();
        debug_assert!(len >= 2);
        let mid = len / 2;
        let (sep, right_keys, right_children) = match &mut self.children {
            Children::Leaf(vals) => {
                let right_keys = self.keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                (right_keys[0], right_keys, Children::Leaf(right_vals))
            }
            Children::Internal(kids) => {
                let right_keys = self.keys.split_off(mid + 1);
                let sep = self.keys.pop().expect("mid >= 1");
                let right_kids = kids.split_off(mid + 1);
                (sep, right_keys, Children::Internal(right_kids))
            }
        };
        let mut sibling = Node {
            keys: right_keys,
            children: right_children,
            right: self.right.take(),
            high: self.high,
            level: self.level,
        };
        sibling.reserve_for(cap);
        let sibling = sibling.into_ref_sampled(sample);
        self.right = Some(Arc::clone(&sibling));
        self.high = Some(sep);
        (sep, sibling)
    }

    /// Inserts a separator/child pair into this internal node.
    pub fn insert_separator(&mut self, sep: u64, child: NodeRef<V>) {
        debug_assert!(!self.is_leaf());
        let pos = self.keys.partition_point(|&k| k < sep);
        self.keys.insert(pos, sep);
        if let Children::Internal(kids) = &mut self.children {
            kids.insert(pos + 1, child);
        }
    }
}

/// Makes a new root over `left` and `right` separated by `sep`; its lock
/// inherits `sample`, the tree's stats-sampling period, and its buffers
/// are pre-reserved for node capacity `cap` (see [`Node::reserve_for`]).
pub fn make_root<V>(
    left: NodeRef<V>,
    sep: u64,
    right: NodeRef<V>,
    level: usize,
    cap: usize,
    sample: SamplePeriod,
) -> NodeRef<V> {
    let mut root = Node {
        keys: vec![sep],
        children: Children::Internal(vec![left, right]),
        right: None,
        high: None,
        level,
    };
    root.reserve_for(cap);
    root.into_ref_sampled(sample)
}

/// Collects `[lo, hi)` by walking the leaf chain rightward from `leaf`,
/// holding one shared latch at a time. Weakly consistent under concurrent
/// updates: keys present for the whole scan are returned exactly once
/// (splits only move keys right, and the walk follows right links), but
/// concurrent inserts/removes may or may not be observed.
pub fn collect_range<V: Clone>(leaf: NodeRef<V>, lo: u64, hi: u64, out: &mut Vec<(u64, V)>) {
    let mut cur = leaf;
    loop {
        let next = {
            let g = cur.read();
            if !g.covers(lo) {
                // A split moved our range right before we latched.
                Arc::clone(
                    g.right
                        .as_ref()
                        .expect("finite high key implies right link"),
                )
            } else {
                if let Children::Leaf(vals) = &g.children {
                    for (i, &k) in g.keys.iter().enumerate() {
                        if k >= lo && k < hi {
                            out.push((k, vals[i].clone()));
                        }
                    }
                }
                let exhausted = g.high.is_none_or(|h| h >= hi);
                if exhausted {
                    return;
                }
                Arc::clone(g.right.as_ref().expect("finite high key"))
            }
        };
        cur = next;
    }
}

/// Visits every node handle in the tree, top level first. Walks the
/// leftmost spine downward and each level's right-link chain — since all
/// protocols maintain right links and nodes are never unlinked
/// (merge-at-empty), this reaches every node. `f` receives `(level,
/// handle)` and can read the handle's embedded lock statistics without
/// latching. The walk uses version-validated optimistic reads so that
/// on a quiescent tree it never perturbs those statistics — a latched
/// walk would charge one read acquisition per node to whatever
/// measurement window the caller is snapshotting. A node whose window
/// keeps failing (a writer in residence, or version bumps mid-walk) is
/// retried a few times and then read under a blocking shared latch, so
/// a non-quiescent caller gets a slightly perturbed snapshot rather
/// than an abort.
#[allow(unsafe_code)]
pub fn for_each_handle<V>(root: &NodeRef<V>, mut f: impl FnMut(usize, &NodeRef<V>)) {
    type Peek<V> = (usize, Option<NodeRef<V>>, Option<NodeRef<V>>);
    fn read<V>(n: &Node<V>) -> Peek<V> {
        let first_child = match &n.children {
            Children::Internal(kids) => kids.first().map(Arc::clone),
            Children::Leaf(_) => None,
        };
        (n.level, first_child, n.right.as_ref().map(Arc::clone))
    }
    let peek = |node: &NodeRef<V>| {
        // A few optimistic retries ride out a straggling writer or a
        // version bump; on a genuinely quiescent tree the first attempt
        // succeeds and no latch is ever taken.
        for _ in 0..8 {
            // SAFETY: `read` copies the POD level, clones node `Arc`s —
            // handles stay alive for the tree's lifetime (nodes are
            // never unlinked) — through checked accesses only, and
            // materializes no value; a torn result is discarded on
            // failed validation.
            if let Some((_, out)) = unsafe { node.read_optimistic(read) } {
                return out;
            }
            std::thread::yield_now();
        }
        // Not quiescent after all: fall back to one blocking shared
        // latch (charging a read acquisition to the caller's stats
        // window) rather than aborting the walk.
        read(&node.read())
    };
    let mut leftmost = Some(Arc::clone(root));
    while let Some(first) = leftmost.take() {
        let mut cur = Some(first);
        while let Some(node) = cur.take() {
            let (level, first_child, right) = peek(&node);
            if leftmost.is_none() {
                leftmost = first_child;
            }
            f(level, &node);
            cur = right;
        }
    }
}

/// The leftmost node of every level, top level first (audit accessor:
/// each entry is the head of that level's right-link chain). Callers
/// must ensure the tree is quiescent.
pub fn level_heads<V>(root: &NodeRef<V>) -> Vec<NodeRef<V>> {
    let mut heads = Vec::new();
    let mut cur = Some(Arc::clone(root));
    while let Some(node) = cur.take() {
        cur = {
            let g = node.read();
            match &g.children {
                Children::Internal(kids) => Some(Arc::clone(&kids[0])),
                Children::Leaf(_) => None,
            }
        };
        heads.push(node);
    }
    heads
}

/// Every node of one level, in right-link order starting from `head`
/// (audit accessor; quiescent use).
pub fn level_chain<V>(head: &NodeRef<V>) -> Vec<NodeRef<V>> {
    let mut chain = Vec::new();
    let mut cur = Some(Arc::clone(head));
    while let Some(node) = cur.take() {
        cur = node.read().right.as_ref().map(Arc::clone);
        chain.push(node);
    }
    chain
}

/// Walks the whole tree (quiescently — callers must ensure no concurrent
/// mutation) checking structural invariants. Returns a description of the
/// first violation.
pub fn check_invariants<V>(root: &NodeRef<V>, cap: usize) -> Result<(), String> {
    fn walk<V>(
        node: &NodeRef<V>,
        cap: usize,
        min: Option<u64>,
        high: Option<u64>,
    ) -> Result<usize, String> {
        let n = node.read();
        if !n.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("keys not strictly sorted".into());
        }
        if n.keys.len() > cap {
            return Err(format!("node overfull: {} > {cap}", n.keys.len()));
        }
        if let Some(h) = n.high {
            if n.keys.iter().any(|&k| k >= h) {
                return Err("key at or above high key".into());
            }
        }
        if n.right.is_some() != n.high.is_some() {
            return Err("right link / high key mismatch".into());
        }
        if n.high != high {
            return Err(format!(
                "high key {:?} disagrees with parent bound {high:?}",
                n.high
            ));
        }
        if let Some(lo) = min {
            if n.keys.iter().any(|&k| k < lo) {
                return Err("key below subtree lower bound".into());
            }
        }
        match &n.children {
            Children::Leaf(vals) => {
                if vals.len() != n.keys.len() {
                    return Err("leaf vals/keys length mismatch".into());
                }
                Ok(1)
            }
            Children::Internal(kids) => {
                if kids.len() != n.keys.len() + 1 {
                    Err(format!(
                        "internal node has {} kids for {} keys",
                        kids.len(),
                        n.keys.len()
                    ))?;
                }
                let mut height = None;
                for (i, kid) in kids.iter().enumerate() {
                    let lo = if i == 0 { min } else { Some(n.keys[i - 1]) };
                    let hi = if i == kids.len() - 1 {
                        n.high
                    } else {
                        Some(n.keys[i])
                    };
                    let h = walk(kid, cap, lo, hi)?;
                    if *height.get_or_insert(h) != h {
                        return Err("children at unequal heights".into());
                    }
                }
                Ok(height.unwrap_or(0) + 1)
            }
        }
    }
    walk(root, cap, None, None).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_with(keys: &[u64]) -> Node<u64> {
        let mut n = Node::new_leaf();
        for &k in keys {
            n.leaf_insert(k, k * 10);
        }
        n
    }

    #[test]
    fn leaf_insert_get_remove() {
        let mut n = leaf_with(&[5, 1, 3]);
        assert_eq!(n.keys, vec![1, 3, 5]);
        assert_eq!(n.leaf_get(3), Some(&30));
        assert_eq!(n.leaf_insert(3, 99), Some(30));
        assert_eq!(n.leaf_get(3), Some(&99));
        assert_eq!(n.leaf_remove(1), Some(10));
        assert_eq!(n.leaf_remove(1), None);
        assert_eq!(n.keys, vec![3, 5]);
    }

    #[test]
    fn leaf_split_keeps_order_and_links() {
        let mut n = leaf_with(&[1, 2, 3, 4, 5]);
        let (sep, sib) = n.half_split(4, SamplePeriod::EXACT);
        assert_eq!(sep, 3);
        assert_eq!(n.keys, vec![1, 2]);
        assert_eq!(n.high, Some(3));
        let s = sib.read();
        assert_eq!(s.keys, vec![3, 4, 5]);
        assert!(n.right.as_ref().is_some_and(|r| Arc::ptr_eq(r, &sib)));
    }

    #[test]
    fn internal_split_moves_separator_up() {
        let kids: Vec<NodeRef<u64>> = (0..6).map(|_| Node::new_leaf().into_ref()).collect();
        let mut n = Node {
            keys: vec![10, 20, 30, 40, 50],
            children: Children::Internal(kids),
            right: None,
            high: None,
            level: 2,
        };
        let (sep, sib) = n.half_split(5, SamplePeriod::EXACT);
        assert_eq!(sep, 30);
        assert_eq!(n.keys, vec![10, 20]);
        let s = sib.read();
        assert_eq!(s.keys, vec![40, 50]);
        match (&n.children, &s.children) {
            (Children::Internal(a), Children::Internal(b)) => {
                assert_eq!(a.len(), 3);
                assert_eq!(b.len(), 3);
            }
            _ => panic!("expected internal"),
        }
    }

    #[test]
    fn covers_and_safety_checks() {
        let mut n = leaf_with(&[1, 2, 3]);
        assert!(n.covers(1_000_000));
        n.high = Some(10);
        assert!(n.covers(9));
        assert!(!n.covers(10));
        assert!(n.insert_unsafe(3));
        assert!(!n.insert_unsafe(4));
        assert!(!n.delete_unsafe());
        let one = leaf_with(&[7]);
        assert!(one.delete_unsafe());
    }

    #[test]
    fn child_index_routing() {
        let kids: Vec<NodeRef<u64>> = (0..3).map(|_| Node::new_leaf().into_ref()).collect();
        let n = Node {
            keys: vec![10, 20],
            children: Children::Internal(kids),
            right: None,
            high: None,
            level: 2,
        };
        assert_eq!(n.child_index(5), 0);
        assert_eq!(n.child_index(10), 1);
        assert_eq!(n.child_index(15), 1);
        assert_eq!(n.child_index(20), 2);
        assert_eq!(n.child_index(99), 2);
    }

    #[test]
    fn invariant_checker_accepts_valid_tree() {
        let left = leaf_with(&[1, 2]).into_ref();
        let right = leaf_with(&[5, 6]).into_ref();
        {
            let mut l = left.write();
            l.high = Some(5);
            l.right = Some(Arc::clone(&right));
        }
        let root = make_root(left, 5, right, 2, 4, SamplePeriod::EXACT);
        check_invariants(&root, 4).unwrap();
    }

    #[test]
    fn invariant_checker_rejects_bad_separator() {
        let left = leaf_with(&[1, 9]).into_ref(); // 9 >= separator 5
        let right = leaf_with(&[5, 6]).into_ref();
        {
            let mut l = left.write();
            l.high = Some(5);
            l.right = Some(Arc::clone(&right));
        }
        let root = make_root(left, 5, right, 2, 4, SamplePeriod::EXACT);
        assert!(check_invariants(&root, 4).is_err());
    }
}
