//! Shared node representation for all three concurrent B+-trees.
//!
//! Nodes live in a per-tree slab [`Arena`] and are addressed by
//! generation-checked [`NodeId`] handles (see [`crate::arena`]); internal
//! nodes hold child ids in a fixed-capacity inline array, so routing data
//! sits in the same cache lines as the node header and splits allocate
//! nothing but a free-list pop. Every node — in every protocol —
//! maintains Lehman–Yao metadata (high key and right link): the link
//! protocols need it for correctness, the others carry it for free and it
//! enables one common invariant checker.
//!
//! Leaf *values* are the one heap-allocated part of a node (`V` is an
//! arbitrary `Clone` type). A published leaf's value buffer is reserved
//! to the true transient maximum — `cap + 1` values, held momentarily
//! just before a split — so no insert can ever reallocate a buffer while
//! optimistic readers may be chasing it. That stability invariant is
//! asserted on every publish path ([`Node::leaf_insert`]); keys and child
//! ids are inline [`InlineVec`]s and cannot move by construction.

use crate::arena::{Arena, InlineVec, MAX_KEYS, MAX_KIDS};

pub use crate::arena::{NodeId, NodeRef};

/// Children of a node: leaf payloads or internal child ids.
///
/// The size gap between the variants is deliberate: child ids are
/// stored inline (the arena's whole point — no per-node heap chase),
/// and every node lives in a fixed-size arena slot anyway, so boxing
/// the large variant would buy nothing and cost an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Children<V> {
    /// Leaf: `vals[i]` is the value for `keys[i]`.
    Leaf(Vec<V>),
    /// Internal: `kids.len() == keys.len() + 1`.
    Internal(InlineVec<NodeId, MAX_KIDS>),
}

/// One B+-tree node.
#[derive(Debug)]
pub struct Node<V> {
    /// Sorted keys (separators for internal nodes), stored inline.
    pub keys: InlineVec<u64, MAX_KEYS>,
    /// Leaf values or child ids.
    pub children: Children<V>,
    /// Right sibling on the same level (`None` = rightmost).
    pub right: Option<NodeId>,
    /// Exclusive upper bound of this node's key range (`None` = +∞).
    pub high: Option<u64>,
    /// Height: 1 = leaf.
    pub level: usize,
}

impl<V> Node<V> {
    /// A fresh empty leaf with no value buffer (scratch/placeholder use;
    /// leaves published into a tree come from [`Node::new_leaf_for`]).
    pub fn new_leaf() -> Self {
        Node {
            keys: InlineVec::new(),
            children: Children::Leaf(Vec::new()),
            right: None,
            high: None,
            level: 1,
        }
    }

    /// A fresh empty leaf whose value buffer is reserved for a tree of
    /// node capacity `cap`: a leaf transiently holds `cap + 1` values
    /// (just before its split), never more, so `cap + 1` is exactly the
    /// reservation that makes in-place inserts realloc-free for the
    /// node's lifetime — the buffer-stability invariant OLC's unsafe
    /// read contract cites.
    pub fn new_leaf_for(cap: usize) -> Self {
        Node {
            keys: InlineVec::new(),
            children: Children::Leaf(Vec::with_capacity(cap + 1)),
            right: None,
            high: None,
            level: 1,
        }
    }

    /// Whether this is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level == 1
    }

    /// Lehman–Yao range test: does this node's key range still cover
    /// `key`? `false` means a concurrent split moved the key right.
    pub fn covers(&self, key: u64) -> bool {
        self.high.is_none_or(|h| key < h)
    }

    /// Index of the child an internal node routes `key` to.
    pub fn child_index(&self, key: u64) -> usize {
        debug_assert!(!self.is_leaf());
        self.keys.partition_point(|&k| k <= key)
    }

    /// The child id `key` routes to.
    ///
    /// # Panics
    /// Panics on leaves.
    pub fn child_for(&self, key: u64) -> NodeId {
        match &self.children {
            Children::Internal(kids) => kids[self.child_index(key)],
            Children::Leaf(_) => panic!("child_for on a leaf"),
        }
    }

    /// Leaf lookup.
    pub fn leaf_get(&self, key: u64) -> Option<&V> {
        match &self.children {
            Children::Leaf(vals) => self.keys.binary_search(&key).ok().map(|i| &vals[i]),
            Children::Internal(_) => panic!("leaf_get on internal node"),
        }
    }

    /// Leaf insert/replace; returns the previous value if the key existed.
    pub fn leaf_insert(&mut self, key: u64, val: V) -> Option<V> {
        let pos = match self.keys.binary_search(&key) {
            Ok(i) => {
                if let Children::Leaf(vals) = &mut self.children {
                    return Some(std::mem::replace(&mut vals[i], val));
                }
                unreachable!()
            }
            Err(i) => i,
        };
        self.keys.insert(pos, key);
        if let Children::Leaf(vals) = &mut self.children {
            // Published leaves are reserved to the `cap + 1` transient
            // maximum; growing past the reservation would reallocate a
            // buffer that latch-free readers may hold a pointer into.
            // (Scratch leaves from `new_leaf()` have no reservation and
            // are exempt — they are never shared.)
            debug_assert!(
                vals.capacity() == 0 || vals.len() < vals.capacity(),
                "published leaf value buffer would reallocate while shared"
            );
            vals.insert(pos, val);
        }
        None
    }

    /// Leaf removal; returns the value if the key existed.
    pub fn leaf_remove(&mut self, key: u64) -> Option<V> {
        match self.keys.binary_search(&key) {
            Ok(i) => {
                self.keys.remove(i);
                if let Children::Leaf(vals) = &mut self.children {
                    Some(vals.remove(i))
                } else {
                    unreachable!()
                }
            }
            Err(_) => None,
        }
    }

    /// Whether an insert into this node could force a split at node
    /// capacity `cap` — the lock-coupling "insert-unsafe" test.
    pub fn insert_unsafe(&self, cap: usize) -> bool {
        self.keys.len() >= cap
    }

    /// Whether a delete could empty this node.
    pub fn delete_unsafe(&self) -> bool {
        self.keys.len() <= 1
    }

    /// Whether the node holds more than `cap` keys and must split.
    pub fn overfull(&self, cap: usize) -> bool {
        self.keys.len() > cap
    }

    /// Half-splits this node in place, returning `(separator, sibling)`.
    /// The sibling inherits this node's right link and high key; this
    /// node's high key becomes the separator. The caller must hold this
    /// node's exclusive latch, install the sibling into the arena, point
    /// `self.right` at the installed id (see [`split_node`]) and publish
    /// the separator to the parent. A split leaf's new value buffer is
    /// reserved for node capacity `cap` (see [`Node::new_leaf_for`]).
    pub fn half_split(&mut self, cap: usize) -> (u64, Node<V>) {
        let len = self.keys.len();
        debug_assert!(len >= 2);
        let mid = len / 2;
        let (sep, right_keys, right_children) = match &mut self.children {
            Children::Leaf(vals) => {
                let right_keys = self.keys.split_off(mid);
                let mut right_vals = Vec::with_capacity(cap + 1);
                right_vals.extend(vals.drain(mid..));
                (right_keys[0], right_keys, Children::Leaf(right_vals))
            }
            Children::Internal(kids) => {
                let right_keys = self.keys.split_off(mid + 1);
                let sep = self.keys.pop().expect("mid >= 1");
                let right_kids = kids.split_off(mid + 1);
                (sep, right_keys, Children::Internal(right_kids))
            }
        };
        let sibling = Node {
            keys: right_keys,
            children: right_children,
            right: self.right,
            high: self.high,
            level: self.level,
        };
        self.high = Some(sep);
        (sep, sibling)
    }

    /// Inserts a separator/child pair into this internal node.
    pub fn insert_separator(&mut self, sep: u64, child: NodeId) {
        debug_assert!(!self.is_leaf());
        let pos = self.keys.partition_point(|&k| k < sep);
        self.keys.insert(pos, sep);
        if let Children::Internal(kids) = &mut self.children {
            kids.insert(pos + 1, child);
        }
    }
}

/// Half-splits the node behind an exclusive latch, installs the new
/// sibling into `arena`, and links it: the composition every split site
/// uses. Returns `(separator, sibling_handle)`.
pub fn split_node<V>(arena: &Arena<V>, node: &mut Node<V>, cap: usize) -> (u64, NodeRef<V>) {
    let (sep, sibling) = node.half_split(cap);
    let sib = arena.alloc(sibling);
    node.right = Some(sib.id());
    (sep, sib)
}

/// Makes a new root over `left` and `right` separated by `sep` and
/// installs it into `arena`. Internal nodes are entirely inline, so no
/// buffer reservation is needed.
pub fn make_root<V>(
    arena: &Arena<V>,
    left: NodeId,
    sep: u64,
    right: NodeId,
    level: usize,
) -> NodeRef<V> {
    arena.alloc(Node {
        keys: InlineVec::from_slice(&[sep]),
        children: Children::Internal(InlineVec::from_slice(&[left, right])),
        right: None,
        high: None,
        level,
    })
}

/// Collects `[lo, hi)` by walking the leaf chain rightward from `leaf`,
/// holding one shared latch at a time. Weakly consistent under concurrent
/// updates: keys present for the whole scan are returned exactly once
/// (splits only move keys right, and the walk follows right links), but
/// concurrent inserts/removes may or may not be observed.
///
/// Returns `None` when the scan completed, or `Some(resume_lo)` when a
/// latched leaf turned out to be **stale** (its arena slot was recycled
/// by a concurrent vacuum between the unlatched hop and the latch
/// acquisition): the caller must re-descend to `resume_lo` and continue.
/// Keys below `resume_lo` have all been emitted — only empty leaves are
/// ever vacuumed, and crossing a live leaf advances the cursor to its
/// high key — so the restart neither duplicates nor drops keys.
pub fn collect_range<V: Clone>(
    leaf: NodeRef<V>,
    lo: u64,
    hi: u64,
    out: &mut Vec<(u64, V)>,
) -> Option<u64> {
    let mut cur = leaf;
    let mut lo = lo;
    loop {
        let next = {
            let g = cur.read_guard();
            if g.stale() {
                return Some(lo);
            }
            if !g.covers(lo) {
                // A split moved our range right before we latched.
                g.right.expect("finite high key implies right link")
            } else {
                if let Children::Leaf(vals) = &g.children {
                    for (i, &k) in g.keys.iter().enumerate() {
                        if k >= lo && k < hi {
                            out.push((k, vals[i].clone()));
                        }
                    }
                }
                match g.high {
                    None => return None,
                    Some(h) if h >= hi => return None,
                    Some(h) => {
                        // Everything below the high key is now emitted;
                        // a restart resumes past it.
                        lo = lo.max(h);
                        g.right.expect("finite high key")
                    }
                }
            }
        };
        cur.goto(next);
    }
}

/// Visits every node handle in the tree, top level first. Walks the
/// leftmost spine downward and each level's right-link chain — all
/// protocols maintain right links, so this reaches every node. `f`
/// receives `(level, handle)` and can read the handle's embedded lock
/// statistics without latching. The walk uses version-validated
/// optimistic reads so that on a quiescent tree it never perturbs those
/// statistics — a latched walk would charge one read acquisition per
/// node to whatever measurement window the caller is snapshotting. A
/// node whose window keeps failing (a writer in residence, a version
/// bump mid-walk, or a slot recycled by a concurrent vacuum) is retried
/// a few times and then read under a blocking shared latch, so a
/// non-quiescent caller gets a slightly perturbed snapshot rather than
/// an abort. Callers wanting an exact snapshot must ensure quiescence
/// (no concurrent mutation or vacuum).
#[allow(unsafe_code)]
pub fn for_each_handle<V>(root: &NodeRef<V>, mut f: impl FnMut(usize, &NodeRef<V>)) {
    type Peek = (usize, Option<NodeId>, Option<NodeId>);
    fn read<V>(n: &Node<V>) -> Peek {
        let first_child = match &n.children {
            Children::Internal(kids) => kids.first().copied(),
            Children::Leaf(_) => None,
        };
        (n.level, first_child, n.right)
    }
    let peek = |node: &NodeRef<V>| {
        // A few optimistic retries ride out a straggling writer or a
        // version bump; on a genuinely quiescent tree the first attempt
        // succeeds and no latch is ever taken.
        for _ in 0..8 {
            // SAFETY: `read` copies only POD fields (level and child
            // ids) through checked accesses and materializes no value;
            // a torn result is discarded on failed validation. The
            // post-validation staleness check rejects windows read from
            // a slot recycled since the handle was created.
            if let Some((_, out)) = unsafe { node.read_optimistic(read) } {
                if !node.stale() {
                    return out;
                }
            }
            std::thread::yield_now();
        }
        // Not quiescent after all: fall back to one blocking shared
        // latch (charging a read acquisition to the caller's stats
        // window) rather than aborting the walk.
        read(&node.read())
    };
    let mut leftmost = Some(root.clone());
    while let Some(first) = leftmost.take() {
        let mut cur = Some(first);
        while let Some(node) = cur.take() {
            let (level, first_child, right) = peek(&node);
            if leftmost.is_none() {
                leftmost = first_child.map(|id| node.at(id));
            }
            f(level, &node);
            cur = right.map(|id| node.at(id));
        }
    }
}

/// The leftmost node of every level, top level first (audit accessor:
/// each entry is the head of that level's right-link chain). Callers
/// must ensure the tree is quiescent.
pub fn level_heads<V>(root: &NodeRef<V>) -> Vec<NodeRef<V>> {
    let mut heads = Vec::new();
    let mut cur = Some(root.clone());
    while let Some(node) = cur.take() {
        cur = {
            let g = node.read();
            match &g.children {
                Children::Internal(kids) => Some(node.at(kids[0])),
                Children::Leaf(_) => None,
            }
        };
        heads.push(node);
    }
    heads
}

/// Every node of one level, in right-link order starting from `head`
/// (audit accessor; quiescent use).
pub fn level_chain<V>(head: &NodeRef<V>) -> Vec<NodeRef<V>> {
    let mut chain = Vec::new();
    let mut cur = Some(head.clone());
    while let Some(node) = cur.take() {
        cur = node.read().right.map(|id| node.at(id));
        chain.push(node);
    }
    chain
}

/// Walks the whole tree (quiescently — callers must ensure no concurrent
/// mutation) checking structural invariants. Returns a description of the
/// first violation.
pub fn check_invariants<V>(root: &NodeRef<V>, cap: usize) -> Result<(), String> {
    fn walk<V>(
        node: &NodeRef<V>,
        cap: usize,
        min: Option<u64>,
        high: Option<u64>,
    ) -> Result<usize, String> {
        if node.stale() {
            return Err("handle is stale (slot recycled)".into());
        }
        let n = node.read();
        if !n.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("keys not strictly sorted".into());
        }
        if n.keys.len() > cap {
            return Err(format!("node overfull: {} > {cap}", n.keys.len()));
        }
        if let Some(h) = n.high {
            if n.keys.iter().any(|&k| k >= h) {
                return Err("key at or above high key".into());
            }
        }
        if n.right.is_some() != n.high.is_some() {
            return Err("right link / high key mismatch".into());
        }
        if n.high != high {
            return Err(format!(
                "high key {:?} disagrees with parent bound {high:?}",
                n.high
            ));
        }
        if let Some(lo) = min {
            if n.keys.iter().any(|&k| k < lo) {
                return Err("key below subtree lower bound".into());
            }
        }
        match &n.children {
            Children::Leaf(vals) => {
                if vals.len() != n.keys.len() {
                    return Err("leaf vals/keys length mismatch".into());
                }
                Ok(1)
            }
            Children::Internal(kids) => {
                if kids.len() != n.keys.len() + 1 {
                    Err(format!(
                        "internal node has {} kids for {} keys",
                        kids.len(),
                        n.keys.len()
                    ))?;
                }
                let mut height = None;
                for (i, &kid) in kids.iter().enumerate() {
                    let lo = if i == 0 { min } else { Some(n.keys[i - 1]) };
                    let hi = if i == kids.len() - 1 {
                        n.high
                    } else {
                        Some(n.keys[i])
                    };
                    let h = walk(&node.at(kid), cap, lo, hi)?;
                    if *height.get_or_insert(h) != h {
                        return Err("children at unequal heights".into());
                    }
                }
                Ok(height.unwrap_or(0) + 1)
            }
        }
    }
    walk(root, cap, None, None).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbtree_sync::SamplePeriod;

    fn arena() -> Arena<u64> {
        Arena::new(SamplePeriod::EXACT)
    }

    fn leaf_with(keys: &[u64]) -> Node<u64> {
        let mut n = Node::new_leaf_for(8);
        for &k in keys {
            n.leaf_insert(k, k * 10);
        }
        n
    }

    #[test]
    fn leaf_insert_get_remove() {
        let mut n = leaf_with(&[5, 1, 3]);
        assert_eq!(&n.keys[..], &[1, 3, 5]);
        assert_eq!(n.leaf_get(3), Some(&30));
        assert_eq!(n.leaf_insert(3, 99), Some(30));
        assert_eq!(n.leaf_get(3), Some(&99));
        assert_eq!(n.leaf_remove(1), Some(10));
        assert_eq!(n.leaf_remove(1), None);
        assert_eq!(&n.keys[..], &[3, 5]);
    }

    #[test]
    fn leaf_split_keeps_order_and_links() {
        let arena = arena();
        let mut n = leaf_with(&[1, 2, 3, 4, 5]);
        let (sep, sib) = split_node(&arena, &mut n, 4);
        assert_eq!(sep, 3);
        assert_eq!(&n.keys[..], &[1, 2]);
        assert_eq!(n.high, Some(3));
        let s = sib.read();
        assert_eq!(&s.keys[..], &[3, 4, 5]);
        assert_eq!(n.right, Some(sib.id()));
    }

    #[test]
    fn internal_split_moves_separator_up() {
        let arena = arena();
        let kid_ids: Vec<NodeId> = (0..6)
            .map(|_| arena.alloc(Node::new_leaf_for(5)).id())
            .collect();
        let mut n = Node {
            keys: InlineVec::from_slice(&[10, 20, 30, 40, 50]),
            children: Children::Internal(InlineVec::from_slice(&kid_ids)),
            right: None,
            high: None,
            level: 2,
        };
        let (sep, sib) = split_node(&arena, &mut n, 5);
        assert_eq!(sep, 30);
        assert_eq!(&n.keys[..], &[10, 20]);
        let s = sib.read();
        assert_eq!(&s.keys[..], &[40, 50]);
        match (&n.children, &s.children) {
            (Children::Internal(a), Children::Internal(b)) => {
                assert_eq!(a.len(), 3);
                assert_eq!(b.len(), 3);
            }
            _ => panic!("expected internal"),
        }
    }

    #[test]
    fn covers_and_safety_checks() {
        let mut n = leaf_with(&[1, 2, 3]);
        assert!(n.covers(1_000_000));
        n.high = Some(10);
        assert!(n.covers(9));
        assert!(!n.covers(10));
        assert!(n.insert_unsafe(3));
        assert!(!n.insert_unsafe(4));
        assert!(!n.delete_unsafe());
        let one = leaf_with(&[7]);
        assert!(one.delete_unsafe());
    }

    #[test]
    fn child_index_routing() {
        let arena = arena();
        let kid_ids: Vec<NodeId> = (0..3)
            .map(|_| arena.alloc(Node::new_leaf_for(4)).id())
            .collect();
        let n: Node<u64> = Node {
            keys: InlineVec::from_slice(&[10, 20]),
            children: Children::Internal(InlineVec::from_slice(&kid_ids)),
            right: None,
            high: None,
            level: 2,
        };
        assert_eq!(n.child_index(5), 0);
        assert_eq!(n.child_index(10), 1);
        assert_eq!(n.child_index(15), 1);
        assert_eq!(n.child_index(20), 2);
        assert_eq!(n.child_index(99), 2);
    }

    /// Two linked leaves under a fresh root, for the invariant tests.
    fn two_leaf_tree(arena: &Arena<u64>, left_keys: &[u64]) -> NodeRef<u64> {
        let left = arena.alloc(leaf_with(left_keys));
        let right = arena.alloc(leaf_with(&[5, 6]));
        {
            let mut l = left.write();
            l.high = Some(5);
            l.right = Some(right.id());
        }
        make_root(arena, left.id(), 5, right.id(), 2)
    }

    #[test]
    fn invariant_checker_accepts_valid_tree() {
        let arena = arena();
        let root = two_leaf_tree(&arena, &[1, 2]);
        check_invariants(&root, 4).unwrap();
    }

    #[test]
    fn invariant_checker_rejects_bad_separator() {
        let arena = arena();
        let root = two_leaf_tree(&arena, &[1, 9]); // 9 >= separator 5
        assert!(check_invariants(&root, 4).is_err());
    }

    #[test]
    fn invariant_checker_rejects_stale_child() {
        let arena = arena();
        let root = two_leaf_tree(&arena, &[1, 2]);
        check_invariants(&root, 4).unwrap();
        // Retire the right leaf without unlinking it from the parent —
        // exactly the inconsistency a buggy vacuum would leave behind.
        let right_id = match &root.read().children {
            Children::Internal(kids) => kids[1],
            Children::Leaf(_) => unreachable!(),
        };
        let right = root.at(right_id);
        let mut g = right.write_guard();
        arena.retire(&mut g);
        drop(g);
        let err = check_invariants(&root, 4).unwrap_err();
        assert!(err.contains("stale"), "got: {err}");
    }
}
