//! The Naive Lock-coupling tree (Bayer–Schkolnick).
//!
//! Readers crab down with shared latches (child latched before the parent
//! is released). Updaters crab with exclusive latches and release the
//! retained ancestor chain as soon as a newly latched child is *safe*
//! (cannot split for inserts / cannot empty for deletes); restructuring
//! then happens entirely under the retained chain.

use crate::descent::{DescentTree, LatchStrategy, ReadPolicy, UpdatePolicy};

/// The Naive Lock-coupling strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockCouplingStrategy;

impl LatchStrategy for LockCouplingStrategy {
    const NAME: &'static str = "lock-coupling";
    const READ: ReadPolicy = ReadPolicy::Crab;
    const UPDATE: UpdatePolicy = UpdatePolicy::Crab { retain_all: false };
}

/// A concurrent B+-tree using naive lock-coupling.
pub type LockCouplingTree<V> = DescentTree<V, LockCouplingStrategy>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = LockCouplingTree::new(6);
        let mut model = BTreeMap::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let tree = Arc::new(LockCouplingTree::new(8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(t * 1_000_000 + i, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            assert_eq!(tree.get(&(t * 1_000_000 + 1999)), Some(t));
        }
    }

    #[test]
    fn concurrent_mixed_workload_conserves_keys() {
        let tree = Arc::new(LockCouplingTree::new(5));
        // Pre-populate evens; threads remove evens and insert odds over
        // disjoint stripes; final state is exactly the odds.
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        tree.check().unwrap();
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_run_against_writers() {
        let tree = Arc::new(LockCouplingTree::new(8));
        for k in 0..1000u64 {
            tree.insert(k, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                for k in 1000..3000u64 {
                    w.insert(k, k);
                }
            });
            for _ in 0..2 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..1000u64 {
                        // Keys present before the writer started must
                        // always be found.
                        assert_eq!(r.get(&k), Some(k));
                    }
                });
            }
        });
        assert_eq!(tree.len(), 3000);
        tree.check().unwrap();
    }

    #[test]
    fn default_and_accessors() {
        let t: LockCouplingTree<()> = LockCouplingTree::default();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 32);
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        let _: LockCouplingTree<()> = LockCouplingTree::new(2);
    }
}
