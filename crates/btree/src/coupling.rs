//! The Naive Lock-coupling tree (Bayer–Schkolnick).
//!
//! Readers crab down with shared latches (child latched before the parent
//! is released). Updaters crab with exclusive latches and release the
//! retained ancestor chain as soon as a newly latched child is *safe*
//! (cannot split for inserts / cannot empty for deletes); restructuring
//! then happens entirely under the retained chain.

use crate::node::{check_invariants, Node, NodeRef};
use crate::writepath;
use cbtree_sync::{FcfsRwLock as RwLock, SamplePeriod};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent B+-tree using naive lock-coupling.
#[derive(Debug)]
pub struct LockCouplingTree<V> {
    root: RwLock<NodeRef<V>>,
    cap: usize,
    len: AtomicUsize,
    sample: SamplePeriod,
}

impl<V> LockCouplingTree<V> {
    /// Creates an empty tree with at most `capacity` keys per node and
    /// exact lock timing.
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn new(capacity: usize) -> Self {
        LockCouplingTree::with_sampling(capacity, SamplePeriod::EXACT)
    }

    /// Creates an empty tree whose node locks time one in
    /// `sample.period()` acquisitions (counts stay exact).
    ///
    /// # Panics
    /// Panics when `capacity < 3`.
    pub fn with_sampling(capacity: usize, sample: SamplePeriod) -> Self {
        assert!(capacity >= 3, "node capacity must be at least 3");
        LockCouplingTree {
            root: RwLock::new(Node::new_leaf().into_ref_sampled(sample)),
            cap: capacity,
            len: AtomicUsize::new(0),
            sample,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current height (levels).
    pub fn height(&self) -> usize {
        self.root.read().read().level
    }

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: V) -> Option<V> {
        writepath::insert_exclusive(
            &self.root,
            self.cap,
            key,
            val,
            || {
                self.len.fetch_add(1, Ordering::AcqRel);
            },
            self.sample,
        )
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &u64) -> Option<V> {
        writepath::remove_exclusive(&self.root, *key, || {
            self.len.fetch_sub(1, Ordering::AcqRel);
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        let mut guard = writepath::lock_root_read(&self.root);
        loop {
            if guard.is_leaf() {
                return guard.keys.binary_search(key).is_ok();
            }
            let child = guard.child_for(*key);
            let child_guard = child.read_arc();
            guard = child_guard;
        }
    }

    /// Checks structural invariants (intended for quiescent moments in
    /// tests; concurrent mutation may produce spurious reports).
    pub fn check(&self) -> Result<(), String> {
        check_invariants(&self.root.read(), self.cap)
    }

    /// Snapshot of the root handle (test/diagnostic use).
    pub fn root_handle(&self) -> NodeRef<V> {
        Arc::clone(&self.root.read())
    }
}

impl<V: Clone> LockCouplingTree<V> {
    /// Looks `key` up, cloning the value out.
    pub fn get(&self, key: &u64) -> Option<V> {
        writepath::get_coupled(&self.root, *key)
    }

    /// Ascending range scan over `[lo, hi)` via the leaf chain, one
    /// shared latch at a time. Weakly consistent under concurrent
    /// updates (see [`crate::node::collect_range`]).
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        if lo < hi {
            let leaf = crate::writepath::leaf_for(&self.root, lo);
            crate::node::collect_range(leaf, lo, hi, &mut out);
        }
        out
    }
}

impl<V> Default for LockCouplingTree<V> {
    fn default() -> Self {
        LockCouplingTree::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn sequential_matches_std_btreemap() {
        let tree = LockCouplingTree::new(6);
        let mut model = BTreeMap::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(tree.insert(key, state), model.insert(key, state)),
                1 => assert_eq!(tree.remove(&key), model.remove(&key)),
                _ => assert_eq!(tree.get(&key), model.get(&key).copied()),
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check().unwrap();
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let tree = Arc::new(LockCouplingTree::new(8));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        tree.insert(t * 1_000_000 + i, t);
                    }
                });
            }
        });
        assert_eq!(tree.len(), 16_000);
        tree.check().unwrap();
        for t in 0..8u64 {
            assert_eq!(tree.get(&(t * 1_000_000 + 1999)), Some(t));
        }
    }

    #[test]
    fn concurrent_mixed_workload_conserves_keys() {
        let tree = Arc::new(LockCouplingTree::new(5));
        // Pre-populate evens; threads remove evens and insert odds over
        // disjoint stripes; final state is exactly the odds.
        for k in (0..4000u64).step_by(2) {
            tree.insert(k, 0u64);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for k in t * 1000..(t + 1) * 1000 {
                        if k % 2 == 0 {
                            assert!(tree.remove(&k).is_some());
                        } else {
                            assert!(tree.insert(k, 1).is_none());
                        }
                    }
                });
            }
        });
        assert_eq!(tree.len(), 2000);
        tree.check().unwrap();
        for k in 0..4000u64 {
            assert_eq!(tree.contains_key(&k), k % 2 == 1, "key {k}");
        }
    }

    #[test]
    fn readers_run_against_writers() {
        let tree = Arc::new(LockCouplingTree::new(8));
        for k in 0..1000u64 {
            tree.insert(k, k);
        }
        std::thread::scope(|s| {
            let w = Arc::clone(&tree);
            s.spawn(move || {
                for k in 1000..3000u64 {
                    w.insert(k, k);
                }
            });
            for _ in 0..2 {
                let r = Arc::clone(&tree);
                s.spawn(move || {
                    for k in 0..1000u64 {
                        // Keys present before the writer started must
                        // always be found.
                        assert_eq!(r.get(&k), Some(k));
                    }
                });
            }
        });
        assert_eq!(tree.len(), 3000);
        tree.check().unwrap();
    }

    #[test]
    fn default_and_accessors() {
        let t: LockCouplingTree<()> = LockCouplingTree::default();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 32);
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        let _: LockCouplingTree<()> = LockCouplingTree::new(2);
    }
}
