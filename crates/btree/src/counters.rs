//! Uniform per-operation telemetry for every latching protocol.
//!
//! The descent engine counts, with relaxed atomics owned by the *tree*
//! (never the lock — the lock's uncontended fast path stays a single
//! CAS), the quantities the paper's analytical models treat as
//! first-class inputs: latch acquisitions per level, optimistic
//! restarts (the `q_i·Pr[F(1)]` rate of the Optimistic model), right-link
//! chases (the Link-type crossing rate of Figure 9), the peak retained
//! latch-chain depth, and — for the §7 recovery variants — transaction
//! commits and deadlock-avoidance spills.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-level counter arrays cover levels `1..=MAX_LEVELS`; anything
/// deeper (unreachable at sane capacities) folds into the last slot.
pub const MAX_LEVELS: usize = 16;

/// Relaxed-atomic operation counters embedded in every tree.
///
/// All increments are `Relaxed` single `fetch_add`s on tree-owned cache
/// lines, so the node locks' fast path is untouched. Read them with
/// [`OpCounters::snapshot`] and diff two snapshots with
/// [`OpCountersSnapshot::since`].
#[derive(Debug, Default)]
pub struct OpCounters {
    ops: AtomicU64,
    r_latches: [AtomicU64; MAX_LEVELS],
    w_latches: [AtomicU64; MAX_LEVELS],
    restarts: AtomicU64,
    chases: AtomicU64,
    peak_chain: AtomicU64,
    txn_commits: AtomicU64,
    txn_spills: AtomicU64,
    v_validations: AtomicU64,
    v_restarts_writer: AtomicU64,
    v_restarts_version: AtomicU64,
}

impl OpCounters {
    /// One public operation (get/insert/remove/contains/range) started.
    #[inline]
    pub(crate) fn record_op(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    /// One node latch acquired at `level` (1 = leaf) in the given mode.
    #[inline]
    pub(crate) fn record_latch(&self, level: usize, exclusive: bool) {
        let idx = level.clamp(1, MAX_LEVELS) - 1;
        let arr = if exclusive {
            &self.w_latches
        } else {
            &self.r_latches
        };
        arr[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// An optimistic first pass found an unsafe leaf and redid the
    /// operation as a full exclusive descent.
    #[inline]
    pub(crate) fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        cbtree_obs::trace::restart();
    }

    /// A traversal chased one right link (Lehman–Yao crossing).
    #[inline]
    pub(crate) fn record_chase(&self) {
        self.chases.fetch_add(1, Ordering::Relaxed);
        cbtree_obs::trace::chase();
    }

    /// One optimistic (latch-free) node read attempted, ending in a
    /// version validation — the OLC reader's unit of work.
    #[inline]
    pub(crate) fn record_validation(&self) {
        self.v_validations.fetch_add(1, Ordering::Relaxed);
    }

    /// An optimistic read window failed and the descent restarted from
    /// its deepest still-valid ancestor. `writer_blocked` attributes the
    /// cause: a writer held the node when the window closed (the reader
    /// must wait it out) versus a version advance (the node changed
    /// inside the window). Counts into the shared `restarts` total so
    /// OLC restarts flow through the same restart-rate plumbing as the
    /// Optimistic protocol's redo descents.
    #[inline]
    pub(crate) fn record_olc_restart(&self, writer_blocked: bool) {
        if writer_blocked {
            self.v_restarts_writer.fetch_add(1, Ordering::Relaxed);
        } else {
            self.v_restarts_version.fetch_add(1, Ordering::Relaxed);
        }
        self.record_restart();
    }

    /// Observes a retained latch-chain depth; keeps the maximum.
    #[inline]
    pub(crate) fn note_chain_depth(&self, depth: usize) {
        self.peak_chain.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A transaction committed (recovery variants only).
    #[inline]
    pub(crate) fn record_txn_commit(&self) {
        self.txn_commits.fetch_add(1, Ordering::Relaxed);
        cbtree_obs::trace::txn_commit();
    }

    /// Retained transaction latches were spilled early to stay
    /// deadlock-free (recovery variants only).
    #[inline]
    pub(crate) fn record_txn_spill(&self) {
        self.txn_spills.fetch_add(1, Ordering::Relaxed);
        cbtree_obs::trace::txn_spill();
    }

    /// Total optimistic restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Total right-link chases so far.
    pub fn chases(&self) -> u64 {
        self.chases.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> OpCountersSnapshot {
        OpCountersSnapshot {
            ops: self.ops.load(Ordering::Relaxed),
            r_latches: self.r_latches.each_ref().map(|c| c.load(Ordering::Relaxed)),
            w_latches: self.w_latches.each_ref().map(|c| c.load(Ordering::Relaxed)),
            restarts: self.restarts.load(Ordering::Relaxed),
            chases: self.chases.load(Ordering::Relaxed),
            peak_chain: self.peak_chain.load(Ordering::Relaxed),
            txn_commits: self.txn_commits.load(Ordering::Relaxed),
            txn_spills: self.txn_spills.load(Ordering::Relaxed),
            v_validations: self.v_validations.load(Ordering::Relaxed),
            v_restarts_writer: self.v_restarts_writer.load(Ordering::Relaxed),
            v_restarts_version: self.v_restarts_version.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`OpCounters`], with derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCountersSnapshot {
    /// Public operations started.
    pub ops: u64,
    /// Shared latch acquisitions, indexed by `level - 1` (0 = leaves).
    pub r_latches: [u64; MAX_LEVELS],
    /// Exclusive latch acquisitions, indexed by `level - 1`.
    pub w_latches: [u64; MAX_LEVELS],
    /// Optimistic restarts (unsafe-leaf redo descents).
    pub restarts: u64,
    /// Right-link chases.
    pub chases: u64,
    /// Peak retained latch-chain depth observed (monotone over the
    /// tree's lifetime; `since` keeps the later snapshot's value).
    pub peak_chain: u64,
    /// Transaction commits (recovery variants).
    pub txn_commits: u64,
    /// Early transaction-latch spills for deadlock avoidance.
    pub txn_spills: u64,
    /// Optimistic (latch-free) node reads attempted, each ending in a
    /// version validation (OLC only; 0 elsewhere).
    pub v_validations: u64,
    /// OLC restarts caused by a writer holding the node when the read
    /// window closed.
    pub v_restarts_writer: u64,
    /// OLC restarts caused by the node's version advancing inside the
    /// read window.
    pub v_restarts_version: u64,
}

impl OpCountersSnapshot {
    /// Counters accumulated since `earlier` (peak depth, being a
    /// lifetime maximum, is carried over rather than subtracted).
    pub fn since(&self, earlier: &OpCountersSnapshot) -> OpCountersSnapshot {
        let mut r_latches = [0u64; MAX_LEVELS];
        let mut w_latches = [0u64; MAX_LEVELS];
        for i in 0..MAX_LEVELS {
            r_latches[i] = self.r_latches[i].saturating_sub(earlier.r_latches[i]);
            w_latches[i] = self.w_latches[i].saturating_sub(earlier.w_latches[i]);
        }
        OpCountersSnapshot {
            ops: self.ops.saturating_sub(earlier.ops),
            r_latches,
            w_latches,
            restarts: self.restarts.saturating_sub(earlier.restarts),
            chases: self.chases.saturating_sub(earlier.chases),
            peak_chain: self.peak_chain,
            txn_commits: self.txn_commits.saturating_sub(earlier.txn_commits),
            txn_spills: self.txn_spills.saturating_sub(earlier.txn_spills),
            v_validations: self.v_validations.saturating_sub(earlier.v_validations),
            v_restarts_writer: self
                .v_restarts_writer
                .saturating_sub(earlier.v_restarts_writer),
            v_restarts_version: self
                .v_restarts_version
                .saturating_sub(earlier.v_restarts_version),
        }
    }

    /// Shared latch acquisitions across all levels.
    pub fn r_latch_total(&self) -> u64 {
        self.r_latches.iter().sum()
    }

    /// Exclusive latch acquisitions across all levels.
    pub fn w_latch_total(&self) -> u64 {
        self.w_latches.iter().sum()
    }

    /// Optimistic restarts per operation (0 when no ops ran).
    pub fn restart_rate(&self) -> f64 {
        per_op(self.restarts, self.ops)
    }

    /// Right-link chases per operation (0 when no ops ran).
    pub fn chase_rate(&self) -> f64 {
        per_op(self.chases, self.ops)
    }

    /// Latch acquisitions (both modes) per operation.
    pub fn latches_per_op(&self) -> f64 {
        per_op(self.r_latch_total() + self.w_latch_total(), self.ops)
    }

    /// Optimistic version validations per operation (0 outside OLC).
    pub fn validation_rate(&self) -> f64 {
        per_op(self.v_validations, self.ops)
    }

    /// JSON object of every counter. The per-level arrays are trimmed at
    /// the deepest level with any activity (leaves first, index 0 =
    /// level 1), so artifacts stay compact for shallow trees.
    pub fn to_json(&self) -> cbtree_obs::Json {
        use cbtree_obs::Json;
        let trim = |arr: &[u64; MAX_LEVELS]| {
            let len = arr.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            Json::arr(arr[..len].iter().map(|&c| c.into()))
        };
        Json::obj(vec![
            ("ops", self.ops.into()),
            ("r_latches", trim(&self.r_latches)),
            ("w_latches", trim(&self.w_latches)),
            ("restarts", self.restarts.into()),
            ("chases", self.chases.into()),
            ("peak_chain", self.peak_chain.into()),
            ("txn_commits", self.txn_commits.into()),
            ("txn_spills", self.txn_spills.into()),
            ("v_validations", self.v_validations.into()),
            ("v_restarts_writer", self.v_restarts_writer.into()),
            ("v_restarts_version", self.v_restarts_version.into()),
        ])
    }
}

fn per_op(count: u64, ops: u64) -> f64 {
    if ops == 0 {
        0.0
    } else {
        count as f64 / ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_rates() {
        let c = OpCounters::default();
        for _ in 0..10 {
            c.record_op();
        }
        c.record_latch(1, false);
        c.record_latch(1, true);
        c.record_latch(3, true);
        c.record_latch(100, true); // clamps into the last slot
        c.record_restart();
        c.record_chase();
        c.record_chase();
        c.record_validation();
        c.record_validation();
        c.record_validation();
        c.record_olc_restart(true);
        c.record_olc_restart(false);
        c.record_olc_restart(false);
        c.note_chain_depth(2);
        c.note_chain_depth(5);
        c.note_chain_depth(3); // max is kept
        let a = c.snapshot();
        assert_eq!(a.ops, 10);
        assert_eq!(a.r_latches[0], 1);
        assert_eq!(a.w_latches[0], 1);
        assert_eq!(a.w_latches[2], 1);
        assert_eq!(a.w_latches[MAX_LEVELS - 1], 1);
        assert_eq!(a.w_latch_total(), 3);
        // One plain restart plus three OLC restarts, which flow into the
        // shared total and split by cause.
        assert_eq!(a.restart_rate(), 0.4);
        assert_eq!(a.v_validations, 3);
        assert_eq!(a.v_restarts_writer, 1);
        assert_eq!(a.v_restarts_version, 2);
        assert_eq!(a.validation_rate(), 0.3);
        assert_eq!(a.chase_rate(), 0.2);
        assert_eq!(a.peak_chain, 5);

        for _ in 0..10 {
            c.record_op();
        }
        c.record_txn_commit();
        c.record_txn_spill();
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.ops, 10);
        assert_eq!(d.restarts, 0);
        assert_eq!(d.v_validations, 0);
        assert_eq!(d.v_restarts_writer, 0);
        assert_eq!(d.v_restarts_version, 0);
        assert_eq!(d.txn_commits, 1);
        assert_eq!(d.txn_spills, 1);
        assert_eq!(d.peak_chain, 5, "peak carries over");
        assert_eq!(d.w_latch_total(), 0);
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let s = OpCountersSnapshot::default();
        assert_eq!(s.restart_rate(), 0.0);
        assert_eq!(s.chase_rate(), 0.0);
        assert_eq!(s.latches_per_op(), 0.0);
    }
}
