//! Validation of the §7 recovery extension against the simulator's
//! faithful lock-retention protocol (beyond the paper, whose Figures
//! 15–16 are analysis-only).

use cbtree::analysis::{Algorithm, ModelConfig, RecoveryMode};
use cbtree::model::{CostModel, OpMix};
use cbtree::sim::runner::matched_tree_shape;
use cbtree::sim::{run_seeds, SimAlgorithm, SimConfig, SimRecovery};

const T_TRANS: f64 = 100.0;

fn sim_cfg(recovery: SimRecovery, lambda: f64) -> SimConfig {
    let mut c = SimConfig::paper(SimAlgorithm::OptimisticDescent, lambda, 1);
    c.costs.disk_cost = 10.0;
    c.recovery = recovery;
    c
}

fn analysis(mode: RecoveryMode, lambda: f64) -> f64 {
    let shape = matched_tree_shape(&sim_cfg(SimRecovery::None, 1.0)).unwrap();
    let cost = CostModel::paper_style(shape.height, 2, 10.0, 1.0).unwrap();
    let cfg = ModelConfig::new(shape, OpMix::paper(), cost)
        .unwrap()
        .with_recovery(mode, T_TRANS);
    Algorithm::OptimisticDescent
        .model(&cfg)
        .evaluate(lambda)
        .map(|p| p.response_time_insert)
        .unwrap_or(f64::INFINITY)
}

#[test]
fn simulated_recovery_ranking_matches_section_7() {
    let lambda = 0.45;
    let seeds = [1, 2, 3];
    let none = run_seeds(&sim_cfg(SimRecovery::None, lambda), &seeds).unwrap();
    let leaf = run_seeds(
        &sim_cfg(SimRecovery::LeafOnly { t_trans: T_TRANS }, lambda),
        &seeds,
    )
    .unwrap();
    let naive = run_seeds(
        &sim_cfg(SimRecovery::Naive { t_trans: T_TRANS }, lambda),
        &seeds,
    )
    .unwrap();
    let (rt_none, rt_leaf, rt_naive) = (
        none.resp_insert.mean,
        leaf.resp_insert.mean,
        naive.resp_insert.mean,
    );
    assert!(
        rt_naive > rt_leaf + 3.0,
        "naive retention must cost clearly more: {rt_naive} vs {rt_leaf}"
    );
    assert!(
        rt_leaf >= rt_none - 0.5,
        "leaf-only ≥ none: {rt_leaf} vs {rt_none}"
    );
    assert!(
        rt_leaf < 1.15 * rt_none,
        "leaf-only only slightly worse than none: {rt_leaf} vs {rt_none}"
    );
}

#[test]
fn leaf_only_analysis_matches_simulation() {
    let lambda = 0.45;
    let sim = run_seeds(
        &sim_cfg(SimRecovery::LeafOnly { t_trans: T_TRANS }, lambda),
        &[1, 2, 3],
    )
    .unwrap();
    let a = analysis(RecoveryMode::LeafOnly, lambda);
    let err = (a - sim.resp_insert.mean).abs() / sim.resp_insert.mean;
    assert!(
        err < 0.15,
        "leaf-only: analysis {a:.2} vs sim {:.2} (rel err {err:.3})",
        sim.resp_insert.mean
    );
}

#[test]
fn naive_analysis_is_conservative_upper_shape() {
    // The paper's Pr[F(i)]·T_trans retention term overestimates how often
    // non-leaf locks are retained by a real protocol (only the redo's
    // unsafe path is still held at completion), so the analysis should
    // sit at or above the simulation while both degrade with load.
    let seeds = [1, 2, 3];
    let lo = 0.2;
    let hi = 0.55;
    let sim_lo = run_seeds(
        &sim_cfg(SimRecovery::Naive { t_trans: T_TRANS }, lo),
        &seeds,
    )
    .unwrap();
    let sim_hi = run_seeds(
        &sim_cfg(SimRecovery::Naive { t_trans: T_TRANS }, hi),
        &seeds,
    )
    .unwrap();
    assert!(
        sim_hi.resp_insert.mean > sim_lo.resp_insert.mean + 3.0,
        "simulated naive recovery must degrade with load: {} → {}",
        sim_lo.resp_insert.mean,
        sim_hi.resp_insert.mean
    );
    for (lambda, sim_rt) in [(lo, sim_lo.resp_insert.mean), (hi, sim_hi.resp_insert.mean)] {
        let a = analysis(RecoveryMode::Naive, lambda);
        assert!(
            a > 0.9 * sim_rt,
            "analysis must not undershoot the simulation: {a} vs {sim_rt} at λ={lambda}"
        );
    }
}

#[test]
fn retention_holds_locks_past_completion() {
    // Under naive retention the average concurrency (ops in flight) stays
    // the same — retention is transaction state, not operation state —
    // but waits rise, visible in the insert RT even at low load.
    let lambda = 0.2;
    let none = run_seeds(&sim_cfg(SimRecovery::None, lambda), &[1, 2]).unwrap();
    let naive = run_seeds(
        &sim_cfg(SimRecovery::Naive { t_trans: T_TRANS }, lambda),
        &[1, 2],
    )
    .unwrap();
    assert!(naive.resp_insert.mean > none.resp_insert.mean + 1.0);
    assert!(naive.resp_search.mean > none.resp_search.mean);
}
