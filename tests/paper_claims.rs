//! End-to-end checks of every qualitative claim the paper makes in its
//! conclusions (§6–§8), exercised through the public API.

use cbtree::analysis::recovery::RecoveryComparison;
use cbtree::analysis::{rules_of_thumb, Algorithm, ModelConfig};
use cbtree::model::{CostModel, NodeParams, OpMix, TreeShape};

fn cfg_for_n(n: usize, disk_cost: f64) -> ModelConfig {
    let shape = TreeShape::derive(40_000, NodeParams::with_max_size(n).unwrap()).unwrap();
    let cost = CostModel::paper_style(shape.height, 2, disk_cost, 1.0).unwrap();
    ModelConfig::new(shape, OpMix::paper(), cost).unwrap()
}

#[test]
fn headline_ranking_link_gg_od_gg_naive() {
    // §8: "the Link-type algorithm is significantly better than the
    // optimistic descent algorithm, which is significantly better than
    // the Naive Lock-coupling algorithm."
    let cfg = ModelConfig::paper_base();
    let naive = Algorithm::NaiveLockCoupling
        .model(&cfg)
        .max_throughput()
        .unwrap();
    let od = Algorithm::OptimisticDescent
        .model(&cfg)
        .max_throughput()
        .unwrap();
    let link = Algorithm::LinkType.model(&cfg).max_throughput().unwrap();
    assert!(od > 2.0 * naive, "OD {od} must dominate naive {naive}");
    assert!(link > 10.0 * od, "link {link} must dominate OD {od}");
}

#[test]
fn naive_wants_small_nodes_od_wants_large_nodes() {
    // §6's design strategy, with binary-search node costs.
    use cbtree::model::SearchCost;
    let build = |n: usize| {
        let node = NodeParams::with_max_size(n).unwrap();
        let shape = TreeShape::derive(1_000_000, node).unwrap();
        let cost = CostModel::with_search_cost(
            shape.height,
            shape.height, // all in memory to isolate the search-cost effect
            1.0,
            SearchCost::BinarySearch { a: 0.5, b: 0.25 },
            &node,
        )
        .unwrap();
        ModelConfig::new(shape, OpMix::paper(), cost).unwrap()
    };
    let naive_small = Algorithm::NaiveLockCoupling
        .model(&build(13))
        .lambda_at_root_rho(0.5)
        .unwrap();
    let naive_large = Algorithm::NaiveLockCoupling
        .model(&build(401))
        .lambda_at_root_rho(0.5)
        .unwrap();
    assert!(
        naive_small > naive_large,
        "naive LC prefers small nodes: N=13 gives {naive_small}, N=401 gives {naive_large}"
    );
    let od_small = Algorithm::OptimisticDescent
        .model(&build(13))
        .lambda_at_root_rho(0.5)
        .unwrap();
    let od_large = Algorithm::OptimisticDescent
        .model(&build(401))
        .lambda_at_root_rho(0.5)
        .unwrap();
    assert!(
        od_large > 3.0 * od_small,
        "OD prefers large nodes: N=13 gives {od_small}, N=401 gives {od_large}"
    );
}

#[test]
fn rules_of_thumb_track_the_analysis_in_memory() {
    // Figure 13/14's headline: for in-memory trees the rules of thumb
    // closely match the analytical λ at ρ_w = .5.
    for n in [13usize, 31, 59] {
        let cfg = cfg_for_n(n, 1.0);
        let exact = Algorithm::NaiveLockCoupling
            .model(&cfg)
            .lambda_at_root_rho(0.5)
            .unwrap();
        let rot = rules_of_thumb::naive_lc_rot1(&cfg).unwrap();
        let ratio = rot / exact;
        assert!(
            (0.5..2.0).contains(&ratio),
            "N={n}: RoT1 {rot} vs analysis {exact}"
        );

        let od_exact = Algorithm::OptimisticDescent
            .model(&cfg)
            .lambda_at_root_rho(0.5)
            .unwrap();
        let rot3 = rules_of_thumb::optimistic_rot3(&cfg).unwrap();
        let od_ratio = rot3 / od_exact;
        assert!(
            (0.3..3.0).contains(&od_ratio),
            "N={n}: RoT3 {rot3} vs analysis {od_exact}"
        );
    }
}

#[test]
fn rot1_overestimates_on_disk_with_small_nodes() {
    // Figure 13's caveat: "If the disk cost is 10, rule of thumb 1 vastly
    // overestimates performance when the maximum node size is small."
    let cfg = cfg_for_n(9, 10.0);
    let exact = Algorithm::NaiveLockCoupling
        .model(&cfg)
        .lambda_at_root_rho(0.5)
        .unwrap();
    let rot = rules_of_thumb::naive_lc_rot1(&cfg).unwrap();
    assert!(
        rot > 1.3 * exact,
        "RoT1 {rot} should overestimate {exact} at D=10, N=9"
    );
}

#[test]
fn limit_rules_are_approached_as_nodes_grow() {
    for d in [1.0, 10.0] {
        let gap = |n: usize| -> f64 {
            let cfg = cfg_for_n(n, d);
            let r1 = rules_of_thumb::naive_lc_rot1(&cfg).unwrap();
            let r2 = rules_of_thumb::naive_lc_rot2(&cfg).unwrap();
            ((r1 - r2) / r2).abs()
        };
        assert!(
            gap(101) < gap(9),
            "D={d}: RoT1 must approach RoT2 as N grows"
        );
    }
}

#[test]
fn naive_effective_max_independent_of_node_size_od_proportional() {
    // §6: naive LC's effective max is independent of N (unit search
    // cost); OD's is inversely proportional to Pr[F(1)] ∝ 1/N.
    let naive_13 = rules_of_thumb::naive_lc_rot1(&cfg_for_n(13, 1.0)).unwrap();
    let naive_101 = rules_of_thumb::naive_lc_rot1(&cfg_for_n(101, 1.0)).unwrap();
    assert!((naive_101 / naive_13 - 1.0).abs() < 0.25);

    let od_13 = rules_of_thumb::optimistic_rot4(&cfg_for_n(13, 1.0)).unwrap();
    let od_101 = rules_of_thumb::optimistic_rot4(&cfg_for_n(101, 1.0)).unwrap();
    let growth = od_101 / od_13;
    assert!(
        (3.0..12.0).contains(&growth),
        "OD limit rule should grow roughly like N/log N: ×{growth:.2}"
    );
}

#[test]
fn recovery_conclusion_leaf_only_cheap_naive_expensive() {
    // §7/§8: "the Leaf-only recovery algorithm is significantly better
    // than the Naive recovery algorithm" and only slightly worse than no
    // recovery.
    let cfg = ModelConfig::paper_with_disk_cost(10.0).unwrap();
    let cmp = RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, 100.0);
    let (none, leaf, naive) = cmp.max_throughputs().unwrap();
    assert!(
        leaf > 0.9 * none,
        "leaf-only ({leaf}) nearly matches no-recovery ({none})"
    );
    assert!(
        naive < 0.6 * leaf,
        "naive recovery ({naive}) far below leaf-only ({leaf})"
    );
}

#[test]
fn recovery_effect_scales_with_transaction_time() {
    let cfg = ModelConfig::paper_with_disk_cost(10.0).unwrap();
    let max_at = |t_trans: f64| {
        RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, t_trans)
            .max_throughputs()
            .unwrap()
            .2
    };
    let short = max_at(10.0);
    let long = max_at(300.0);
    assert!(
        short > long,
        "longer transactions must hurt naive recovery more"
    );
}

#[test]
fn lock_coupling_bottleneck_is_the_root() {
    // Theorem 2: the saturating level under lock-coupling is the root.
    let cfg = ModelConfig::paper_base();
    let model = Algorithm::NaiveLockCoupling.model(&cfg);
    let max = model.max_throughput().unwrap();
    match model.evaluate(max * 1.02) {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("level 5"),
                "bottleneck must be the root: {msg}"
            );
        }
        Ok(_) => panic!("must saturate just above the maximum"),
    }
}

#[test]
fn response_time_hockey_stick() {
    // §5.3: curves "stay level with an increasing arrival rate, then
    // increase rapidly as the arrival rate approaches the maximum".
    let cfg = ModelConfig::paper_base();
    let model = Algorithm::NaiveLockCoupling.model(&cfg);
    let max = model.max_throughput().unwrap();
    let rt = |f: f64| model.evaluate(f * max).unwrap().response_time_insert;
    let early_slope = (rt(0.3) - rt(0.1)) / (0.2 * max);
    let late_slope = (rt(0.97) - rt(0.90)) / (0.07 * max);
    assert!(
        late_slope > 10.0 * early_slope,
        "late slope {late_slope} must dwarf early slope {early_slope}"
    );
}

#[test]
fn resource_contention_dilation_scales_everything() {
    // §5.2: resource contention enters as a uniform service-time
    // dilation; response times scale accordingly, maxima inversely.
    let base = ModelConfig::paper_base();
    let dilated = ModelConfig::new(
        base.shape.clone(),
        base.mix,
        base.cost.dilated(2.0).unwrap(),
    )
    .unwrap();
    let m0 = Algorithm::OptimisticDescent.model(&base);
    let m2 = Algorithm::OptimisticDescent.model(&dilated);
    let rt0 = m0.evaluate(0.0).unwrap().response_time_search;
    let rt2 = m2.evaluate(0.0).unwrap().response_time_search;
    assert!((rt2 / rt0 - 2.0).abs() < 1e-9);
    let max0 = m0.max_throughput().unwrap();
    let max2 = m2.max_throughput().unwrap();
    assert!((max0 / max2 - 2.0).abs() < 0.01);
}
