//! The paper's central validation: the analytical framework's
//! predictions agree with discrete-event simulation of the actual
//! algorithms on actual B-trees ("The comparison shows that the analysis
//! and the simulation predict the same response times", §5.3).
//!
//! These tests run at the paper's full scale (40 000-item tree, 10 000
//! measured operations) — one simulation takes tens of milliseconds.

use cbtree::analysis::{Algorithm, ModelConfig, PerformanceModel};
use cbtree::model::{CostModel, OpMix};
use cbtree::sim::runner::matched_tree_shape;
use cbtree::sim::{run_seeds, SimAlgorithm, SimConfig};

const SEEDS: [u64; 3] = [1, 2, 3];

/// Builds the analytical model of exactly the tree the simulation runs on.
fn matched_model(algorithm: Algorithm, sim_cfg: &SimConfig) -> Box<dyn PerformanceModel> {
    let shape = matched_tree_shape(sim_cfg).expect("valid shape");
    let cost = CostModel::paper_style(
        shape.height,
        sim_cfg.costs.memory_levels,
        sim_cfg.costs.disk_cost,
        sim_cfg.costs.base,
    )
    .expect("valid cost");
    let cfg = ModelConfig::new(shape, OpMix::paper(), cost).expect("consistent");
    algorithm.model(&cfg)
}

fn assert_close(what: &str, analysis: f64, sim: f64, rel_tol: f64) {
    let err = (analysis - sim).abs() / sim.max(1e-9);
    assert!(
        err < rel_tol,
        "{what}: analysis {analysis:.3} vs simulation {sim:.3} (rel err {err:.3} > {rel_tol})"
    );
}

fn validate(algorithm: Algorithm, sim_alg: SimAlgorithm, lambdas: &[f64], rel_tol: f64) {
    let sim_cfg = SimConfig::paper(sim_alg, 1.0, 1);
    let model = matched_model(algorithm, &sim_cfg);
    for &lambda in lambdas {
        let mut c = sim_cfg.clone();
        c.arrival_rate = lambda;
        let sim = run_seeds(&c, &SEEDS).expect("stable at this rate");
        let a = model
            .evaluate(lambda)
            .expect("analysis stable at this rate");
        assert_close(
            &format!("{algorithm:?} search RT at λ={lambda}"),
            a.response_time_search,
            sim.resp_search.mean,
            rel_tol,
        );
        assert_close(
            &format!("{algorithm:?} insert RT at λ={lambda}"),
            a.response_time_insert,
            sim.resp_insert.mean,
            rel_tol,
        );
        assert_close(
            &format!("{algorithm:?} delete RT at λ={lambda}"),
            a.response_time_delete,
            sim.resp_delete.mean,
            rel_tol,
        );
    }
}

#[test]
fn naive_lock_coupling_matches_simulation() {
    // Up to 70% of the analytic maximum; beyond that both curves blow up
    // and relative comparisons become noise-dominated (paper figures show
    // the same).
    let sim_cfg = SimConfig::paper(SimAlgorithm::NaiveLockCoupling, 1.0, 1);
    let max = matched_model(Algorithm::NaiveLockCoupling, &sim_cfg)
        .max_throughput()
        .unwrap();
    validate(
        Algorithm::NaiveLockCoupling,
        SimAlgorithm::NaiveLockCoupling,
        &[0.3 * max, 0.5 * max, 0.7 * max],
        0.20,
    );
}

#[test]
fn optimistic_descent_matches_simulation() {
    let sim_cfg = SimConfig::paper(SimAlgorithm::OptimisticDescent, 1.0, 1);
    let max = matched_model(Algorithm::OptimisticDescent, &sim_cfg)
        .max_throughput()
        .unwrap();
    validate(
        Algorithm::OptimisticDescent,
        SimAlgorithm::OptimisticDescent,
        &[0.3 * max, 0.6 * max],
        0.20,
    );
}

#[test]
fn link_type_matches_simulation() {
    validate(
        Algorithm::LinkType,
        SimAlgorithm::LinkType,
        &[0.5, 2.0, 5.0],
        0.15,
    );
}

#[test]
fn two_phase_locking_matches_simulation() {
    // The §8 baseline extension: 2PL saturates very early; validate the
    // model well below its tiny maximum.
    let sim_cfg = SimConfig::paper(SimAlgorithm::TwoPhaseLocking, 1.0, 1);
    let max = matched_model(Algorithm::TwoPhaseLocking, &sim_cfg)
        .max_throughput()
        .unwrap();
    assert!(max < 0.2, "2PL max must be tiny: {max}");
    validate(
        Algorithm::TwoPhaseLocking,
        SimAlgorithm::TwoPhaseLocking,
        &[0.3 * max, 0.5 * max],
        0.30,
    );
}

#[test]
fn root_writer_utilization_matches() {
    // Figure 10's quantity: ρ_w(h) from the fixed point vs the simulated
    // time-weighted writer-present indicator at the root.
    let sim_cfg = SimConfig::paper(SimAlgorithm::NaiveLockCoupling, 1.0, 1);
    let model = matched_model(Algorithm::NaiveLockCoupling, &sim_cfg);
    let max = model.max_throughput().unwrap();
    for frac in [0.3, 0.5, 0.7] {
        let lambda = frac * max;
        let mut c = sim_cfg.clone();
        c.arrival_rate = lambda;
        let sim = run_seeds(&c, &SEEDS).unwrap();
        let rho_a = model.evaluate(lambda).unwrap().root_writer_utilization();
        let rho_s = sim.root_writer_utilization.mean;
        assert!(
            (rho_a - rho_s).abs() < 0.10,
            "rho at λ={lambda:.3}: analysis {rho_a:.3} vs sim {rho_s:.3}"
        );
    }
}

#[test]
fn optimistic_redo_rate_matches_pr_full() {
    // §5.1: redo-inserts enter at rate q_i·Pr[F(1)]·λ. Per *update* the
    // simulator reports redos/(inserts+deletes) = q_i·Pr[F(1)]/(q_i+q_d).
    let sim_cfg = SimConfig::paper(SimAlgorithm::OptimisticDescent, 1.0, 1);
    let shape = matched_tree_shape(&sim_cfg).unwrap();
    let cost = CostModel::paper_style(shape.height, 2, 5.0, 1.0).unwrap();
    let cfg = ModelConfig::new(shape, OpMix::paper(), cost).unwrap();
    let predicted = cfg.mix.insert_share_of_updates() * cfg.fullness.pr_full(1);

    let sim = run_seeds(&sim_cfg, &SEEDS).unwrap();
    let measured = sim.redo_rate.mean;
    assert!(
        (measured - predicted).abs() < 0.6 * predicted,
        "redo per update: simulated {measured:.4} vs Corollary-1 prediction {predicted:.4}"
    );
}

#[test]
fn simulated_tree_shape_matches_paper_description() {
    // §5.3: "A node held a maximum of 13 items. The concurrent operations
    // started when the B-tree held about 40,000 items. The root held
    // about 6 children. The B-tree had 5 levels."
    let sim_cfg = SimConfig::paper(SimAlgorithm::LinkType, 1.0, 1);
    let shape = matched_tree_shape(&sim_cfg).unwrap();
    assert_eq!(shape.height, 5);
    assert!(
        (3.0..=10.0).contains(&shape.root_fanout()),
        "root fanout {}",
        shape.root_fanout()
    );
    // Leaf occupancy near the 0.68·N Corollary-1 constant.
    let leaf_occ = shape.fanout(1) / 13.0;
    assert!((0.55..0.8).contains(&leaf_occ), "leaf occupancy {leaf_occ}");
}

#[test]
fn open_system_throughput_equals_arrival_rate() {
    // §3.1: "if all of the queues are stable, the throughput is equal to
    // the arrival rate".
    for (alg, lambda) in [
        (SimAlgorithm::NaiveLockCoupling, 0.3),
        (SimAlgorithm::OptimisticDescent, 1.0),
        (SimAlgorithm::LinkType, 3.0),
    ] {
        let sim = run_seeds(&SimConfig::paper(alg, lambda, 1), &SEEDS).unwrap();
        let thr = sim.throughput.mean;
        assert!(
            (thr - lambda).abs() < 0.1 * lambda,
            "{alg:?}: throughput {thr} vs arrival rate {lambda}"
        );
    }
}
