//! Cross-crate integration: the facade crate's pieces compose — the
//! analytical model's structural predictions hold on the *real* threaded
//! B-trees, and the workload generators drive everything consistently.

use cbtree::btree::{BLinkTree, ConcurrentBTree, OptimisticTree, Protocol};
use cbtree::model::{Fullness, NodeParams, OpMix, TreeShape};
use cbtree::workload::{OpStream, Operation, OpsConfig};
use std::sync::Arc;

#[test]
fn real_od_redo_rate_tracks_corollary_1() {
    // Corollary 1 predicts the leaf-full probability Pr[F(1)]; the real
    // optimistic tree's redo rate per insert should sit in its vicinity
    // once the tree is warm.
    let n = 13usize;
    let tree = OptimisticTree::<u64>::new(n);
    let mut stream = OpStream::new(OpsConfig::paper(3_000_000), 42);
    // Warm phase (not counted).
    for _ in 0..60_000 {
        if let Operation::Insert(k) = stream.next_op() {
            tree.insert(k, k);
        }
    }
    let redo_before = tree.redo_count();
    let mut inserts = 0u64;
    for _ in 0..150_000 {
        match stream.next_op() {
            Operation::Insert(k) => {
                tree.insert(k, k);
                inserts += 1;
            }
            Operation::Delete(k) => {
                tree.remove(&k);
            }
            Operation::Search(_) => {}
        }
    }
    let measured = (tree.redo_count() - redo_before) as f64 / inserts as f64;

    let shape =
        TreeShape::derive(tree.len() as u64, NodeParams::with_max_size(n).unwrap()).unwrap();
    let fullness = Fullness::corollary1(&shape, &OpMix::paper()).unwrap();
    let predicted = fullness.pr_full(1);
    assert!(
        measured > 0.2 * predicted && measured < 3.0 * predicted,
        "real redo rate {measured:.4} vs Corollary-1 Pr[F(1)] {predicted:.4}"
    );
}

#[test]
fn real_tree_height_matches_shape_model() {
    for n in [8usize, 16, 64] {
        let tree = BLinkTree::<u64>::new(n);
        for k in 0..30_000u64 {
            tree.insert(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k);
        }
        let predicted = TreeShape::derive(tree.len() as u64, NodeParams::with_max_size(n).unwrap())
            .unwrap()
            .height;
        let actual = tree.height();
        assert!(
            (actual as i64 - predicted as i64).abs() <= 1,
            "N={n}: real height {actual} vs model {predicted}"
        );
    }
}

#[test]
fn workload_streams_drive_all_trees_identically() {
    // The same seeded stream applied to each protocol must leave the
    // exact same key set (sequential application).
    let mut contents: Vec<Vec<u64>> = Vec::new();
    for p in Protocol::ALL {
        let tree = ConcurrentBTree::<u64>::new(p, 8);
        let mut stream = OpStream::new(OpsConfig::paper(5_000), 7);
        for _ in 0..20_000 {
            match stream.next_op() {
                Operation::Search(_) => {}
                Operation::Insert(k) => {
                    tree.insert(k, k);
                }
                Operation::Delete(k) => {
                    tree.remove(&k);
                }
            }
        }
        let present: Vec<u64> = (0..5_000).filter(|k| tree.contains_key(k)).collect();
        contents.push(present);
        tree.check().unwrap();
    }
    assert_eq!(contents[0], contents[1]);
    assert_eq!(contents[1], contents[2]);
}

#[test]
fn concurrent_paper_mix_on_all_protocols() {
    // The paper's mix from 8 threads; every protocol must stay valid and
    // agree with the net-insert accounting.
    for p in Protocol::ALL {
        let tree = Arc::new(ConcurrentBTree::<u64>::new(p, 13));
        let net = Arc::new(std::sync::atomic::AtomicI64::new(0));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let tree = Arc::clone(&tree);
                let net = Arc::clone(&net);
                s.spawn(move || {
                    let mut stream = OpStream::new(OpsConfig::paper(500_000), 900 + t);
                    for _ in 0..5_000 {
                        match stream.next_op() {
                            Operation::Search(k) => {
                                let _ = tree.get(&k);
                            }
                            Operation::Insert(k) => {
                                if tree.insert(k, k).is_none() {
                                    net.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                            Operation::Delete(k) => {
                                if tree.remove(&k).is_some() {
                                    net.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            tree.len() as i64,
            net.load(std::sync::atomic::Ordering::Relaxed),
            "{p:?}"
        );
        tree.check().unwrap();
    }
}

#[test]
fn facade_reexports_compose() {
    // The doc-advertised entry points all resolve through the facade.
    let cfg = cbtree::analysis::ModelConfig::paper_base();
    let model = cbtree::analysis::Algorithm::LinkType.model(&cfg);
    let perf = model.evaluate(0.5).unwrap();
    assert!(perf.response_time_insert > 0.0);

    let q = cbtree::queueing::RwQueue::new(1.0, 0.1, 1.0, 1.0).unwrap();
    assert!(q.solve().unwrap().rho_w > 0.0);

    let report = cbtree::sim::run(
        &cbtree::sim::SimConfig::paper(cbtree::sim::SimAlgorithm::LinkType, 0.5, 1).scaled_down(20),
    )
    .unwrap();
    assert!(report.completed > 0);

    let tree = cbtree::btree::BLinkTree::<&'static str>::new(16);
    tree.insert(1, "one");
    assert_eq!(tree.get(&1), Some("one"));
}
