//! # cbtree — concurrent B-tree performance analysis framework
//!
//! A full reproduction of **Johnson & Shasha, "A Framework for the
//! Performance Analysis of Concurrent B-tree Algorithms" (PODS 1990)**:
//! analytical queueing models, a validating discrete-event simulator, and
//! real threaded concurrent B+-trees implementing the three algorithms the
//! paper studies.
//!
//! This facade crate re-exports the workspace members under stable module
//! names so downstream users can depend on a single crate:
//!
//! * [`queueing`] — M/M/1, M/G/1, staged servers, and the FCFS
//!   reader/writer lock queue (paper Appendix, Theorem 6).
//! * [`model`] — B-tree stochastic shape and cost model (node-fullness
//!   probabilities, fanouts, disk cost dilation).
//! * [`analysis`] — the paper's analytical framework: response times and
//!   maximum throughput for Naive Lock-coupling, Optimistic Descent and the
//!   Link-type algorithm; rules of thumb; recovery extension.
//! * [`sim`] — the validation simulator (Poisson arrivals, exponential
//!   service, per-node FCFS R/W lock queues on actual B-trees).
//! * [`btree`] — real in-memory concurrent B+-trees with the three latching
//!   protocols.
//! * [`sync`] — from-scratch FCFS reader/writer lock with built-in lock
//!   statistics (waits, holds, writer utilization) used by [`btree`].
//! * [`harness`] — live-execution measurement: the real trees on OS
//!   threads, reporting the same per-level observables as [`sim`].
//! * [`workload`] — deterministic workload generation shared by all of the
//!   above.
//!
//! ## Quickstart
//!
//! ```
//! use cbtree::analysis::{Algorithm, ModelConfig};
//!
//! // The paper's base configuration (§5.3): node size 13, 40k items,
//! // 5 levels, 2 in memory, disk cost 5, mix .3/.5/.2.
//! let cfg = ModelConfig::paper_base();
//! let model = Algorithm::LinkType.model(&cfg);
//! let perf = model.evaluate(0.5).expect("stable at this arrival rate");
//! assert!(perf.response_time_insert > 0.0);
//! let max = model.max_throughput().unwrap();
//! assert!(max > 0.5);
//! ```

pub use cbtree_analysis as analysis;
pub use cbtree_btree as btree;
pub use cbtree_btree_model as model;
pub use cbtree_harness as harness;
pub use cbtree_queueing as queueing;
pub use cbtree_sim as sim;
pub use cbtree_sync as sync;
pub use cbtree_workload as workload;
