#!/usr/bin/env bash
# CI gate for the cbtree workspace. Everything runs offline: the
# workspace has zero external dependencies, in the build graph or in
# dev-dependencies.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (inject feature: schedule perturbation compiled in)"
cargo test --workspace --features inject -q

echo "==> correctness pillar: quick stress sweep (3 protocols x 16 seeds)"
cargo run --release -p cbtree-check --bin stress -- --quick

echo "==> correctness pillar: injected-bug demo (checker must convict)"
cargo run --release -p cbtree-check --bin stress -- --demo-bug

echo "==> lock microbenchmark (smoke mode, writes BENCH_lock.json)"
cargo run --release -p cbtree-bench --bin lockbench -- --smoke

echo "==> ok"
