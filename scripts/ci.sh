#!/usr/bin/env bash
# CI gate for the cbtree workspace. Everything runs offline: the
# workspace has zero external dependencies, in the build graph or in
# dev-dependencies.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (inject feature: schedule perturbation compiled in)"
cargo test --workspace --features inject -q

echo "==> reclamation pillar: differential + conviction suites (inject feature)"
cargo test -p cbtree-btree --features inject --test differential -q
# cbtree-check's deps enable inject unconditionally, so no feature flag
# here (cargo rejects -p PKG --features F when PKG itself lacks F).
cargo test -p cbtree-check --test e2e -q

echo "==> cargo test (trace feature: event tracing compiled in)"
cargo test --workspace --features trace -q

echo "==> correctness pillar: quick stress sweep (4 protocols x 16 seeds)"
cargo run --release -p cbtree-check --bin stress -- --quick

echo "==> correctness pillar: batched-execution sweep (sorted batches of 4)"
cargo run --release -p cbtree-check --bin stress -- --quick --batch 4 --seeds 8

echo "==> correctness pillar: injected-bug demo (checker must convict)"
cargo run --release -p cbtree-check --bin stress -- --demo-bug

echo "==> observability pillar: traced live runs + cbtree-trace smoke"
cargo build --release --features trace -p cbtree-harness --bin live \
    -p cbtree-bench --bin cbtree-trace --bin lockbench
for proto in coupling blink olc; do
    target/release/live --algo "$proto" --threads 4 --items 20000 \
        --capacity 16 --warmup-ms 50 --measure-ms 120 \
        --json "results/run-$proto.jsonl" --trace-buf 1048576 > /dev/null
done
target/release/cbtree-trace results/run-coupling.jsonl results/run-blink.jsonl \
    results/run-olc.jsonl --json results/trace-compare.jsonl

echo "==> open-loop service layer: smoke sweep (2 shards x 3 lambda points) + overlay"
target/release/serve --shards 2 --generators 1 --service-floor-us 300 \
    --queue-cap 256 --sweep 500,1000,2000 --items 10000 \
    --warmup-ms 100 --measure-ms 300 --assert-low-shed \
    --json results/serve-smoke.jsonl > /dev/null
target/release/analyze --serve results/serve-smoke.jsonl

echo "==> batched service layer: smoke sweep (2 shards x 2 workers x 2 batch sizes) + overlay"
for bm in 1 8; do
    target/release/serve --shards 2 --workers 2 --batch-max "$bm" \
        --generators 1 --service-floor-us 300 --queue-cap 256 \
        --sweep 1000,2000,4000 --items 10000 \
        --warmup-ms 100 --measure-ms 300 --assert-low-shed \
        --json "results/serve-batch-b$bm.jsonl" > /dev/null
    target/release/analyze --serve "results/serve-batch-b$bm.jsonl"
done

echo "==> lock microbenchmark (smoke, trace-off overhead guard vs BENCH_lock.json)"
target/release/lockbench --smoke --assert-overhead 2 --out BENCH_lock_smoke.json

echo "==> tree storage microbenchmark (smoke, slab-vs-arc overhead guard vs BENCH_tree.json)"
target/release/treebench --smoke --assert-overhead 15 --out BENCH_tree_smoke.json

echo "==> ok"
