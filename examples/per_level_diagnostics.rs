//! Per-level deep dive: the framework's internal quantities — writer
//! utilization `ρ_w(i)`, shared/exclusive lock waits `R(i)`/`W(i)` —
//! side by side with the simulator's measured per-level statistics, for
//! one algorithm at one operating point.
//!
//! This is the view behind the paper's Figure 1: the B-tree as a column
//! of FCFS R/W lock queues.
//!
//! ```text
//! cargo run --release --example per_level_diagnostics [naive|optimistic|link|two-phase] [frac_of_max]
//! ```

use cbtree::analysis::{Algorithm, ModelConfig};
use cbtree::model::{CostModel, OpMix};
use cbtree::sim::costs::SimCosts;
use cbtree::sim::runner::{construction_phase, matched_tree_shape};
use cbtree::sim::{SimAlgorithm, SimConfig, Simulator};
use cbtree::workload::{Operation, PoissonArrivals};

fn main() {
    let alg_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "naive".to_string());
    let frac: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.7);
    let (algorithm, sim_alg) = match alg_name.as_str() {
        "naive" => (
            Algorithm::NaiveLockCoupling,
            SimAlgorithm::NaiveLockCoupling,
        ),
        "optimistic" => (
            Algorithm::OptimisticDescent,
            SimAlgorithm::OptimisticDescent,
        ),
        "link" => (Algorithm::LinkType, SimAlgorithm::LinkType),
        "two-phase" => (Algorithm::TwoPhaseLocking, SimAlgorithm::TwoPhaseLocking),
        other => {
            eprintln!("unknown algorithm `{other}` (naive|optimistic|link|two-phase)");
            std::process::exit(2);
        }
    };

    // Model the exact tree the simulator builds.
    let base_cfg = SimConfig::paper(sim_alg, 1.0, 1);
    let shape = matched_tree_shape(&base_cfg).expect("valid shape");
    let cost = CostModel::paper_style(shape.height, 2, 5.0, 1.0).unwrap();
    let cfg = ModelConfig::new(shape, OpMix::paper(), cost).unwrap();
    let model = algorithm.model(&cfg);
    let max = model.max_throughput().expect("finite or capped");
    let lambda = frac * max.min(1e4);
    println!(
        "{} at λ = {lambda:.4} ({:.0}% of max throughput {max:.4}), D = 5\n",
        algorithm.name(),
        frac * 100.0,
    );

    let perf = model.evaluate(lambda).expect("stable");

    // Run the simulator once at the same point and pull per-level stats.
    let mut sim_cfg = base_cfg.clone();
    sim_cfg.arrival_rate = lambda;
    sim_cfg = sim_cfg.with_min_window(120.0, 400.0);
    let (tree, mut stream) = construction_phase(&sim_cfg).unwrap();
    let mut sim = Simulator::new(tree, SimCosts::paper(), sim_alg, sim_cfg.warmup_ops, 1);
    let mut arrivals = PoissonArrivals::new(lambda, 7);
    sim.schedule_arrival(arrivals.next_arrival());
    let target = sim_cfg.warmup_ops + sim_cfg.measured_ops;
    sim.run_until(target, sim_cfg.max_concurrent, move || {
        use cbtree::sim::driver::OpKind;
        let (kind, key) = match stream.next_op() {
            Operation::Search(k) => (OpKind::Search, k),
            Operation::Insert(k) => (OpKind::Insert, k),
            Operation::Delete(k) => (OpKind::Delete, k),
        };
        (kind, key, arrivals.next_arrival())
    })
    .expect("stable at this rate");

    println!(
        "{:>5} {:>10} {:>10} | {:>8} {:>8} | {:>8} {:>8} | {:>9}",
        "level",
        "λ_R/node",
        "λ_W/node",
        "R(i) mdl",
        "R(i) sim",
        "W(i) mdl",
        "W(i) sim",
        "ρ_w model"
    );
    for l in perf.levels.iter().rev() {
        let idx = l.level - 1;
        let sim_r = sim.stats.wait_r.get(idx).map(|w| w.mean()).unwrap_or(0.0);
        let sim_w = sim.stats.wait_w.get(idx).map(|w| w.mean()).unwrap_or(0.0);
        println!(
            "{:>5} {:>10.5} {:>10.5} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>9.3}",
            l.level, l.lambda_r, l.lambda_w, l.r_wait, sim_r, l.w_wait, sim_w, l.rho_w
        );
    }
    println!(
        "\nresponse times  model: search {:.2}  insert {:.2} | simulated: search {:.2}  insert {:.2}",
        perf.response_time_search,
        perf.response_time_insert,
        sim.stats.resp_search.mean(),
        sim.stats.resp_insert.mean(),
    );
    println!(
        "root writer utilization  model {:.3} | simulated {:.3}",
        perf.root_writer_utilization(),
        sim.stats.root_writer.mean()
    );
}
