//! Capacity planning with the rules of thumb (§6): given a workload mix
//! and a storage profile, how large should B-tree nodes be, and which
//! algorithm sustains the target arrival rate?
//!
//! Reproduces the paper's design guidance — the Naive Lock-coupling
//! algorithm's effective maximum barely moves with node size (with a
//! binary-search cost it *degrades*), while Optimistic Descent scales
//! like N/log²N, so it wants nodes as large as possible.
//!
//! ```text
//! cargo run --release --example capacity_planning [target_rate]
//! ```

use cbtree::analysis::{rules_of_thumb, Algorithm, ModelConfig};
use cbtree::model::{CostModel, NodeParams, OpMix, SearchCost, TreeShape};

fn config_for(n: usize, items: u64, disk_cost: f64) -> ModelConfig {
    let shape = TreeShape::derive(items, NodeParams::with_max_size(n).unwrap()).unwrap();
    // Binary-search node cost: a + b·log2(N) — the §6 model that makes
    // node size a genuine trade-off.
    let cost = CostModel::with_search_cost(
        shape.height,
        2,
        disk_cost,
        SearchCost::BinarySearch { a: 0.5, b: 0.125 },
        &NodeParams::with_max_size(n).unwrap(),
    )
    .unwrap();
    ModelConfig::new(shape, OpMix::paper(), cost).unwrap()
}

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let items = 1_000_000u64;
    let disk_cost = 5.0;

    println!("workload: mix .3/.5/.2, {items} items, disk cost {disk_cost}, binary-search nodes");
    println!("target sustained arrival rate: {target} ops/unit\n");
    println!(
        "{:>5} {:>3} | {:>12} {:>10} | {:>12} {:>10} | {:>12}",
        "N", "h", "naive rho=.5", "RoT 1", "optim rho=.5", "RoT 3", "link max"
    );

    let mut best: Option<(&str, usize, f64)> = None;
    for n in [13usize, 29, 59, 101, 201, 401] {
        let cfg = config_for(n, items, disk_cost);
        let naive = Algorithm::NaiveLockCoupling.model(&cfg);
        let optim = Algorithm::OptimisticDescent.model(&cfg);
        let link = Algorithm::LinkType.model(&cfg);

        let naive_half = naive.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
        let optim_half = optim.lambda_at_root_rho(0.5).unwrap_or(f64::NAN);
        let link_max = link.max_throughput().unwrap_or(f64::NAN);
        let rot1 = rules_of_thumb::naive_lc_rot1(&cfg).unwrap_or(f64::NAN);
        let rot3 = rules_of_thumb::optimistic_rot3(&cfg).unwrap_or(f64::NAN);

        println!(
            "{:>5} {:>3} | {:>12.4} {:>10.4} | {:>12.4} {:>10.4} | {:>12.1}",
            n,
            cfg.height(),
            naive_half,
            rot1,
            optim_half,
            rot3,
            link_max
        );

        for (name, v) in [("naive-lc", naive_half), ("optimistic", optim_half)] {
            if v.is_finite() && v >= target {
                let better = match best {
                    Some((_, _, b)) => v > b,
                    None => true,
                };
                if better {
                    best = Some((name, n, v));
                }
            }
        }
    }

    println!();
    match best {
        Some((alg, n, v)) => println!(
            "recommendation: {alg} with N = {n} sustains the target \
             (effective max {v:.3} ≥ {target})"
        ),
        None => println!(
            "no coupling-based configuration reaches {target}; use the \
             link-type algorithm (its effective maximum is far beyond the target)"
        ),
    }
    println!(
        "rule of thumb (§6): lock-coupling wants SMALL nodes; optimistic \
         descent wants LARGE nodes (effective max ∝ N/log²N)."
    );
}
