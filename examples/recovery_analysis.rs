//! The §7 application: how much index concurrency does transactional
//! recovery cost, and is Leaf-only lock retention worth a dedicated
//! protocol? Compares No-recovery / Leaf-only / Naive recovery on
//! Optimistic Descent for a given remaining-transaction time.
//!
//! ```text
//! cargo run --release --example recovery_analysis [t_trans] [disk_cost]
//! ```

use cbtree::analysis::recovery::RecoveryComparison;
use cbtree::analysis::{Algorithm, ModelConfig};

fn main() {
    let t_trans: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let disk_cost: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);

    let cfg = ModelConfig::paper_with_disk_cost(disk_cost).expect("valid disk cost");
    let cmp = RecoveryComparison::new(Algorithm::OptimisticDescent, &cfg, t_trans);

    let (max_none, max_leaf, max_naive) = cmp.max_throughputs().expect("finite maxima");
    println!("Optimistic Descent, D = {disk_cost}, T_trans = {t_trans}\n");
    println!("maximum throughput:");
    println!("  no recovery        {max_none:.4}");
    println!(
        "  leaf-only          {max_leaf:.4}  ({:.1}% of no-recovery)",
        100.0 * max_leaf / max_none
    );
    println!(
        "  naive recovery     {max_naive:.4}  ({:.1}% of no-recovery)",
        100.0 * max_naive / max_none
    );

    println!("\ninsert response times:");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "lambda", "no-recovery", "leaf-only", "naive"
    );
    for frac in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let lambda = frac * max_naive;
        let row = cmp.insert_row(lambda).expect("stable below naive max");
        println!(
            "{:>8.4} {:>14.2} {:>14.2} {:>14.2}",
            lambda, row.insert_rt_none, row.insert_rt_leaf_only, row.insert_rt_naive
        );
    }

    println!(
        "\nconclusion (§7): Leaf-only retention costs only a few percent over \
         no recovery, while Naive retention cuts the sustainable throughput \
         to {:.0}% — retaining only leaf locks until commit is a cheap, \
         significant win.",
        100.0 * max_naive / max_leaf
    );
}
