//! Drives the *real* threaded B+-trees with the paper's operation mix and
//! reports per-protocol throughput plus the algorithm-specific statistics
//! the analysis predicts (optimistic redo rate, link crossing rate).
//!
//! ```text
//! cargo run --release --example btree_stress [threads] [ops_per_thread]
//! ```

use cbtree::btree::{BLinkTree, ConcurrentBTree, Protocol};
use cbtree::workload::{OpStream, Operation, OpsConfig};
use std::sync::Arc;
use std::time::Instant;

fn run_mix(tree: &ConcurrentBTree<u64>, threads: u64, per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let tree = &*tree;
            s.spawn(move || {
                let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 77 + t);
                for _ in 0..per_thread {
                    match stream.next_op() {
                        Operation::Search(k) => {
                            std::hint::black_box(tree.get(&k));
                        }
                        Operation::Insert(k) => {
                            tree.insert(k, k);
                        }
                        Operation::Delete(k) => {
                            tree.remove(&k);
                        }
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as usize * per_thread) as f64 / secs / 1e6
}

fn prefill(tree: &ConcurrentBTree<u64>, items: u64) {
    let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 5);
    let mut n = 0;
    while n < items {
        if let Operation::Insert(k) = stream.next_op() {
            if tree.insert(k, k).is_none() {
                n += 1;
            }
        }
    }
}

fn main() {
    let threads: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let per_thread: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    println!(
        "paper mix (.3/.5/.2), {threads} threads x {per_thread} ops, \
         100k-item prefill, node capacity 64\n"
    );
    println!("{:<16} {:>12} {:>12}", "protocol", "Mops/s", "final len");
    for protocol in Protocol::ALL {
        let tree = ConcurrentBTree::new(protocol, 64);
        prefill(&tree, 100_000);
        let mops = run_mix(&tree, threads, per_thread);
        println!("{:<16} {:>12.2} {:>12}", protocol.name(), mops, tree.len());
        tree.check()
            .expect("tree invariants must hold after the run");
    }

    // Algorithm-specific statistics on the dedicated types.
    let blink: Arc<BLinkTree<u64>> = Arc::new(BLinkTree::new(8));
    std::thread::scope(|s| {
        for t in 0..threads {
            let blink = Arc::clone(&blink);
            s.spawn(move || {
                for i in 0..50_000u64 {
                    blink.insert(i * threads + t, i);
                }
            });
        }
    });
    println!(
        "\nb-link crossings per op under {} contending inserters: {:.5} \
         (the paper's Figure 9: link chasing is rare)",
        threads,
        blink.crossing_count() as f64 / (threads as f64 * 50_000.0)
    );

    let od = cbtree::btree::OptimisticTree::<u64>::new(13);
    let mut stream = OpStream::new(OpsConfig::paper(1_000_000), 9);
    let mut inserts = 0u64;
    for _ in 0..200_000 {
        match stream.next_op() {
            Operation::Insert(k) => {
                od.insert(k, k);
                inserts += 1;
            }
            Operation::Delete(k) => {
                od.remove(&k);
            }
            Operation::Search(_) => {}
        }
    }
    println!(
        "optimistic redo rate with N=13: {:.4} per update \
         (analysis predicts ~ q_i·Pr[F(1)] ≈ 0.05 of all ops)",
        od.redo_count() as f64 / inserts.max(1) as f64
    );
}
