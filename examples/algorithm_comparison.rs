//! Side-by-side comparison of the three algorithms — analysis *and*
//! simulation — across an arrival-rate sweep, like the paper's Figure 12
//! but parameterized from the command line.
//!
//! ```text
//! cargo run --release --example algorithm_comparison [disk_cost] [n_points]
//! ```

use cbtree::analysis::{Algorithm, ModelConfig, PerformanceModel};
use cbtree::sim::costs::SimCosts;
use cbtree::sim::{run_seeds, SimAlgorithm, SimConfig};

fn sim_insert_rt(alg: SimAlgorithm, lambda: f64, disk_cost: f64) -> String {
    let mut cfg = SimConfig::paper(alg, lambda, 1);
    cfg.costs = SimCosts {
        base: 1.0,
        disk_cost,
        memory_levels: 2,
    };
    match run_seeds(&cfg, &[1, 2, 3]) {
        Ok(s) => format!("{:.2}", s.resp_insert.mean),
        Err(_) => "unstable".to_string(),
    }
}

fn main() {
    let disk_cost: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let points: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    // Model the exact tree the simulator's construction phase builds.
    let mut sim_cfg = SimConfig::paper(SimAlgorithm::LinkType, 1.0, 1);
    sim_cfg.costs = SimCosts {
        base: 1.0,
        disk_cost,
        memory_levels: 2,
    };
    let items = sim_cfg.initial_items;
    let shape = cbtree::sim::runner::matched_tree_shape(&sim_cfg).unwrap();
    let cost = cbtree::model::CostModel::paper_style(shape.height, 2, disk_cost, 1.0).unwrap();
    let cfg = ModelConfig::new(shape, cbtree::model::OpMix::paper(), cost).unwrap();

    let naive = Algorithm::NaiveLockCoupling.model(&cfg);
    let optim = Algorithm::OptimisticDescent.model(&cfg);
    let link = Algorithm::LinkType.model(&cfg);
    let od_max = optim.max_throughput().unwrap();

    println!("insert response times, disk cost D = {disk_cost}, tree of {items} items\n");
    println!(
        "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "lambda", "naive(A)", "naive(S)", "optim(A)", "optim(S)", "link(A)", "link(S)"
    );
    for i in 1..=points {
        let lambda = od_max * 1.1 * i as f64 / points as f64;
        let a = |m: &dyn PerformanceModel| -> String {
            m.evaluate(lambda)
                .map(|p| format!("{:.2}", p.response_time_insert))
                .unwrap_or_else(|_| "sat".to_string())
        };
        println!(
            "{:>8.4} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            lambda,
            a(naive.as_ref()),
            sim_insert_rt(SimAlgorithm::NaiveLockCoupling, lambda, disk_cost),
            a(optim.as_ref()),
            sim_insert_rt(SimAlgorithm::OptimisticDescent, lambda, disk_cost),
            a(link.as_ref()),
            sim_insert_rt(SimAlgorithm::LinkType, lambda, disk_cost),
        );
    }
    println!(
        "\n(A) = analytical model, (S) = discrete-event simulation (3 seeds).\n\
         The paper's ranking: link >> optimistic >> naive lock-coupling."
    );
}
