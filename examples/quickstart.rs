//! Quickstart: evaluate the three concurrent B-tree algorithms on the
//! paper's base configuration, print response times and maximum
//! throughputs, and cross-check one point against the simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cbtree::analysis::{Algorithm, ModelConfig};
use cbtree::sim::{run, SimAlgorithm, SimConfig};

fn main() {
    // The paper's §5.3 setup: N = 13, ~40 000 items, 5 levels (top 2 in
    // memory), disk access 5× memory, mix .3 search / .5 insert / .2
    // delete, time unit = one root search.
    let cfg = ModelConfig::paper_base();
    println!(
        "B-tree: {} items, height {}, root fanout {:.1}, N = {}\n",
        cfg.shape.n_items,
        cfg.height(),
        cfg.shape.root_fanout(),
        cfg.shape.node.max_node_size
    );

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "max-thru", "search@0.2", "insert@0.2", "rho_w@0.2"
    );
    for alg in Algorithm::ALL {
        let model = alg.model(&cfg);
        let max = model.max_throughput().expect("finite or capped");
        let perf = model.evaluate(0.2).expect("stable at lambda = 0.2");
        println!(
            "{:<12} {:>10.3} {:>12.2} {:>12.2} {:>12.3}",
            alg.name(),
            max,
            perf.response_time_search,
            perf.response_time_insert,
            perf.root_writer_utilization()
        );
    }

    // Validate one operating point against the discrete-event simulator
    // (the paper's §4 protocol at full scale takes ~30 ms).
    let lambda = 0.2;
    let sim = run(&SimConfig::paper(
        SimAlgorithm::NaiveLockCoupling,
        lambda,
        42,
    ))
    .expect("stable at this rate");
    let model = Algorithm::NaiveLockCoupling.model(&cfg);
    let analysis = model.evaluate(lambda).unwrap();
    println!(
        "\nvalidation at lambda = {lambda}: naive insert RT analysis {:.2} vs simulation {:.2} ± {:.2}",
        analysis.response_time_insert, sim.resp_insert.mean, sim.resp_insert.ci95
    );
}
